//! The static-cost contract behind the eval tables: for every
//! precision configuration the tables sweep, the compiled plan's
//! [`softmap_ap::ApProgram::static_cost`] must equal the `CycleStats`
//! of actually simulating the representative input the plan was
//! compiled from — on both backends, per step, and through the
//! deployment model's `vector_stats` query.

use softmap::{ApDeployment, ApSoftmax, WorkloadModel};
use softmap_ap::{ExecBackend, OptLevel};
use softmap_softmax::PrecisionConfig;

/// The precision grid the perplexity/latency tables sweep
/// (Tables I/III/IV axes).
fn table_configs() -> Vec<PrecisionConfig> {
    let mut configs = Vec::new();
    for m in [4, 6, 8] {
        for delta in [0, 1, 2] {
            for n in [8, 16] {
                configs.push(PrecisionConfig::new(m, delta, n));
            }
        }
    }
    configs
}

#[test]
fn static_cost_equals_simulated_for_every_table_configuration() {
    for cfg in table_configs() {
        for len in [128usize, 256] {
            let mapping = ApSoftmax::new(cfg)
                .unwrap()
                .with_backend(ExecBackend::FastWord);
            let stat = mapping.static_cost(len).unwrap();
            let run = mapping
                .execute_floats(&ApSoftmax::representative_scores(len))
                .unwrap();
            assert_eq!(
                stat,
                run.total,
                "static != simulated at {} len {len}",
                cfg.label()
            );
        }
    }
}

#[test]
fn static_cost_is_backend_independent_and_stepwise_exact() {
    let cfg = PrecisionConfig::paper_best();
    let len = 1024;
    let fast = ApSoftmax::new(cfg)
        .unwrap()
        .with_backend(ExecBackend::FastWord);
    let micro = ApSoftmax::new(cfg)
        .unwrap()
        .with_backend(ExecBackend::Microcode);
    assert_eq!(
        fast.static_cost(len).unwrap(),
        micro.static_cost(len).unwrap(),
        "the dual-backend contract extends to static costs"
    );
    // The per-step static breakdown matches a simulated run of the
    // representative input exactly.
    let run = fast
        .execute_floats(&ApSoftmax::representative_scores(len))
        .unwrap();
    let steps = fast.static_step_stats(len).unwrap();
    assert_eq!(steps, run.steps);
}

#[test]
fn static_cost_tracks_simulated_at_every_opt_level() {
    // Static == simulated must survive every pass combination the
    // optimizer can produce, per step and in total.
    let cfg = PrecisionConfig::paper_best();
    let len = 256;
    for level in [OptLevel::None, OptLevel::Basic, OptLevel::Full] {
        let mapping = ApSoftmax::new(cfg)
            .unwrap()
            .with_backend(ExecBackend::FastWord)
            .with_opt_level(level);
        let stat = mapping.static_cost(len).unwrap();
        let run = mapping
            .execute_floats(&ApSoftmax::representative_scores(len))
            .unwrap();
        assert_eq!(stat, run.total, "static != simulated at {level:?}");
        assert_eq!(
            mapping.static_step_stats(len).unwrap(),
            run.steps,
            "{level:?}"
        );
    }
}

#[test]
fn optimizer_gate_default_deployment_tile() {
    // Acceptance gate: at the default deployment's full tile (2048 rows
    // = length 4096 packed), the fused schedule must cut simulated
    // cycles by at least 15% versus the unoptimized replay. Both sides
    // are simulated cycle counts from the shared cost model, so the
    // gate is host-invariant.
    let len = 4096;
    let base = ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_autotune(false)
        .with_backend(ExecBackend::FastWord)
        .with_opt_level(OptLevel::None);
    let opt = base.clone().with_opt_level(OptLevel::Full);
    let unopt = base.static_cost(len).unwrap().cycles();
    let fused = opt.static_cost(len).unwrap().cycles();
    assert!(
        fused * 100 <= unopt * 85,
        "optimizer gate: {fused} fused vs {unopt} unoptimized cycles \
         ({}% remaining, need <= 85%)",
        fused * 100 / unopt
    );
}

#[test]
fn static_cost_equals_simulated_for_sharded_shapes() {
    // The acceptance contract for the device model: a sequence past
    // the tile capacity answers its static cost (work, waves, reduction
    // cycles, critical path) from the compiled sharded plan, and every
    // number equals actually simulating the representative input.
    let deploy = ApDeployment::default();
    let model = WorkloadModel::new(PrecisionConfig::paper_best(), deploy).unwrap();
    for len in [8192usize, 16384] {
        let vc = model.vector_cost(len).unwrap();
        assert_eq!(vc.shards, len / 4096, "len {len}");
        assert!(vc.reduction.cycles() > 0);
        // Pinned: the deployment model keeps the paper's fixed
        // mapping, so the reference simulation must too.
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_autotune(false)
            .with_backend(deploy.backend);
        let run = mapping
            .execute_floats(&ApSoftmax::representative_scores(len))
            .unwrap();
        assert_eq!(vc.total, run.total, "static != simulated at len {len}");
        assert_eq!(vc.latency_cycles, run.latency_cycles, "len {len}");
        assert_eq!(vc.shards, run.shards);
        assert_eq!(vc.waves, run.waves);
        assert_eq!(model.vector_stats(len).unwrap(), run.total);
    }
}

#[test]
fn resident_static_cost_tracks_simulated_at_every_opt_level() {
    // The residency-aware cost contract: at both sharded acceptance
    // lengths, for every pass combination, the resident plan's static
    // cost (total and per step/phase) equals actually simulating the
    // representative input — and undercuts the re-staged plan's work
    // by at least 10%.
    for level in [OptLevel::None, OptLevel::Basic, OptLevel::Full] {
        for len in [8192usize, 16384] {
            let mut totals = [0u64; 2];
            for (slot, resident) in [(0, true), (1, false)] {
                let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
                    .unwrap()
                    .with_backend(ExecBackend::FastWord)
                    .with_resident(resident)
                    .with_opt_level(level);
                let vc = mapping.static_vector_cost(len).unwrap();
                let run = mapping
                    .execute_floats(&ApSoftmax::representative_scores(len))
                    .unwrap();
                assert_eq!(
                    vc.total, run.total,
                    "static != simulated at {level:?} len {len} resident {resident}"
                );
                assert_eq!(vc.latency_cycles, run.latency_cycles, "{level:?} len {len}");
                assert_eq!(
                    mapping.static_step_stats(len).unwrap(),
                    run.steps,
                    "per-phase static != simulated at {level:?} len {len} resident {resident}"
                );
                totals[slot] = vc.total.cycles();
            }
            assert!(
                totals[0] * 100 <= totals[1] * 90,
                "residency gate at {level:?} len {len}: resident {} vs re-staged {}",
                totals[0],
                totals[1]
            );
        }
    }
}

#[test]
fn sharded_static_cost_is_backend_independent() {
    // Tiny device so the Microcode sweep stays cheap. Two grids: one
    // forcing the multi-wave re-staged fallback (2 tiles, 3 shards),
    // one keeping all shards resident (8 tiles).
    for dev in [
        softmap_ap::DeviceConfig::new(2, 8),
        softmap_ap::DeviceConfig::new(8, 8),
    ] {
        let fast = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(ExecBackend::FastWord)
            .with_device(dev);
        let micro = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(ExecBackend::Microcode)
            .with_device(dev);
        let len = 48;
        assert_eq!(
            fast.static_vector_cost(len).unwrap(),
            micro.static_vector_cost(len).unwrap(),
            "the dual-backend contract extends to sharded static costs \
             ({} tiles)",
            dev.tiles
        );
    }
}

#[test]
fn workload_model_latency_tables_use_the_static_path() {
    // `vector_stats` (the entry every Fig. 6/7/8 and Table V number
    // funnels through) must agree with an actual simulation of the
    // representative input, and repeated queries must not recompile.
    let model = WorkloadModel::new(PrecisionConfig::paper_best(), ApDeployment::default()).unwrap();
    for len in [128usize, 512, 1024] {
        let stats = model.vector_stats(len).unwrap();
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_autotune(false)
            .with_backend(ApDeployment::default().backend);
        let run = mapping
            .execute_floats(&ApSoftmax::representative_scores(len))
            .unwrap();
        assert_eq!(stats, run.total, "vector_stats diverges at len {len}");
        assert_eq!(model.vector_stats(len).unwrap(), stats);
    }
}
