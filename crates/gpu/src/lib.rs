//! Analytic GPU latency/energy model for A100 and RTX3090.
//!
//! The paper measures the integer-approximated softmax on real GPUs; we
//! cannot, so this crate is the calibrated substitute (see the README
//! substitutions). The model is a bandwidth roofline with three
//! empirically motivated corrections, each an explicit parameter:
//!
//! 1. **Kernel launch overhead** — per-kernel microseconds; the unfused
//!    integer pipeline launches several kernels per layer.
//! 2. **Cache boost** — softmax tensors that fit in L2 stream far above
//!    HBM bandwidth.
//! 3. **Large-tensor decay** — row-wise reductions over multi-GB
//!    attention tensors fall well below the STREAM roofline (TLB and
//!    cache thrash); calibrated against the paper's Fig. 1 endpoints
//!    (softmax ≤3.34% of Llama2-7b runtime at L ≤ 1024, ≈38% at
//!    L = 16384).
//!
//! Energy is `power(utilization) × time` with a busy-power floor (real
//! GPUs running small kernels still burn a large fraction of TDP).
//!
//! # Examples
//!
//! ```
//! use softmap_gpu::{GpuSpec, SoftmaxKernelModel};
//! use softmap_llm::configs::{llama2_7b, SoftmaxWorkload};
//!
//! let w = SoftmaxWorkload::prefill(&llama2_7b(), 1024, 1);
//! let cost = SoftmaxKernelModel::int_unfused().cost(&GpuSpec::a100(), &w);
//! assert!(cost.latency_s > 0.0 && cost.energy_j > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod transformer;

use softmap_llm::configs::SoftmaxWorkload;

/// Published and calibrated parameters of one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Device name.
    pub name: &'static str,
    /// Peak memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Peak FP16 tensor throughput, TFLOP/s.
    pub fp16_tflops: f64,
    /// Board power limit, watts.
    pub tdp_w: f64,
    /// Idle power, watts.
    pub idle_w: f64,
    /// Active-power floor as a fraction of (TDP − idle): even tiny
    /// kernels clock the whole chip up.
    pub busy_floor: f64,
    /// Per-kernel launch + sync overhead, microseconds.
    pub launch_us: f64,
    /// Last-level cache capacity, MiB.
    pub l2_mib: f64,
    /// Bandwidth multiplier for cache-resident working sets.
    pub cache_boost: f64,
    /// Large-tensor decay scale, GiB (effective bandwidth halves around
    /// this working-set size; see the module docs).
    pub decay_tau_gib: f64,
    /// Large-tensor decay exponent.
    pub decay_exp: f64,
    /// Floor on the decayed bandwidth fraction (kernels never fall
    /// below this fraction of peak no matter the tensor size).
    pub decay_floor: f64,
    /// Relative energy cost factor (process + memory technology;
    /// RTX3090's GDDR6X on Samsung 8 nm is markedly less efficient per
    /// byte than A100's HBM2e on TSMC 7 nm).
    pub energy_factor: f64,
}

impl GpuSpec {
    /// NVIDIA A100 (80 GB, SXM).
    #[must_use]
    pub fn a100() -> Self {
        Self {
            name: "A100",
            mem_bw_gbs: 1555.0,
            fp16_tflops: 312.0,
            tdp_w: 400.0,
            idle_w: 90.0,
            busy_floor: 0.45,
            launch_us: 5.0,
            l2_mib: 40.0,
            cache_boost: 2.5,
            decay_tau_gib: 8.0,
            decay_exp: 0.7,
            decay_floor: 0.33,
            energy_factor: 1.0,
        }
    }

    /// NVIDIA GeForce RTX 3090.
    #[must_use]
    pub fn rtx3090() -> Self {
        Self {
            name: "RTX3090",
            mem_bw_gbs: 936.0,
            fp16_tflops: 142.0,
            tdp_w: 350.0,
            idle_w: 60.0,
            busy_floor: 0.5,
            launch_us: 6.0,
            l2_mib: 6.0,
            cache_boost: 2.0,
            decay_tau_gib: 4.0,
            decay_exp: 0.7,
            decay_floor: 0.30,
            energy_factor: 1.6,
        }
    }

    /// Both evaluated GPUs, in the paper's order.
    #[must_use]
    pub fn paper_gpus() -> Vec<GpuSpec> {
        vec![Self::a100(), Self::rtx3090()]
    }

    /// Effective bandwidth (bytes/s) for a per-kernel working set of
    /// `tensor_bytes`.
    #[must_use]
    pub fn effective_bandwidth(&self, tensor_bytes: f64) -> f64 {
        let peak = self.mem_bw_gbs * 1e9;
        let l2 = self.l2_mib * 1024.0 * 1024.0;
        if tensor_bytes <= l2 {
            return peak * self.cache_boost;
        }
        let gib = tensor_bytes / (1024.0 * 1024.0 * 1024.0);
        let frac = 1.0 / (1.0 + (gib / self.decay_tau_gib).powf(self.decay_exp));
        peak * frac.max(self.decay_floor)
    }

    /// Average power at a given achieved-bandwidth utilization in
    /// `[0, 1]`, applying the busy floor.
    #[must_use]
    pub fn power_w(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0).max(self.busy_floor);
        self.idle_w + (self.tdp_w - self.idle_w) * u
    }
}

/// Latency and energy of one workload on one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCost {
    /// Wall-clock latency, seconds.
    pub latency_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
}

impl GpuCost {
    /// Energy-delay product, J·s.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.latency_s * self.energy_j
    }
}

/// Cost model of a softmax kernel family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftmaxKernelModel {
    /// Effective DRAM traffic per tensor element, bytes (reads + writes
    /// across all passes).
    pub bytes_per_element: f64,
    /// Kernel launches per transformer layer.
    pub kernels_per_layer: f64,
}

impl SoftmaxKernelModel {
    /// The integer-only approximation executed as (partially fused)
    /// element-wise int32 kernels — what the paper benchmarks on GPUs
    /// for Figs. 6–8: about ten kernels per layer, five int32 round
    /// trips of effective traffic.
    #[must_use]
    pub fn int_unfused() -> Self {
        Self {
            bytes_per_element: 40.0,
            kernels_per_layer: 10.0,
        }
    }

    /// A fused FP16 softmax (Fig. 1's baseline): one kernel, one
    /// read-write round trip.
    #[must_use]
    pub fn fp_fused() -> Self {
        Self {
            bytes_per_element: 4.0,
            kernels_per_layer: 1.0,
        }
    }

    /// Latency and energy of the workload on `gpu`.
    #[must_use]
    pub fn cost(&self, gpu: &GpuSpec, w: &SoftmaxWorkload) -> GpuCost {
        let total_bytes = w.total_elements as f64 * self.bytes_per_element;
        // Per-kernel working set: one layer's attention tensor in the
        // kernel's element width (fp16 for fused, int32 for unfused).
        let elem_bytes = if self.bytes_per_element <= 8.0 {
            2.0
        } else {
            4.0
        };
        let per_layer_tensor = (w.total_elements as f64 / w.layers as f64) * elem_bytes;
        let bw = gpu.effective_bandwidth(per_layer_tensor);
        let launch_s = w.layers as f64 * self.kernels_per_layer * gpu.launch_us * 1e-6;
        let stream_s = total_bytes / bw;
        let latency_s = launch_s + stream_s;
        // Utilization relative to peak HBM bandwidth over the whole run.
        let util = (total_bytes / latency_s) / (gpu.mem_bw_gbs * 1e9);
        let energy_j = gpu.power_w(util) * latency_s * gpu.energy_factor;
        GpuCost {
            latency_s,
            energy_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_llm::configs::llama2_7b;

    fn w(seq: usize, batch: usize) -> SoftmaxWorkload {
        SoftmaxWorkload::prefill(&llama2_7b(), seq, batch)
    }

    #[test]
    fn latency_monotone_in_sequence_and_batch() {
        let m = SoftmaxKernelModel::int_unfused();
        let g = GpuSpec::a100();
        let base = m.cost(&g, &w(512, 1)).latency_s;
        assert!(m.cost(&g, &w(1024, 1)).latency_s > base);
        assert!(m.cost(&g, &w(512, 8)).latency_s > base);
    }

    #[test]
    fn a100_faster_and_more_efficient_than_3090() {
        let m = SoftmaxKernelModel::int_unfused();
        let big = w(4096, 8);
        let a = m.cost(&GpuSpec::a100(), &big);
        let r = m.cost(&GpuSpec::rtx3090(), &big);
        assert!(a.latency_s < r.latency_s);
        assert!(a.energy_j < r.energy_j);
        // the paper's Table V: 3090 EDP ratios are about 4x the A100's
        let ratio = r.edp() / a.edp();
        assert!(ratio > 2.0 && ratio < 12.0, "EDP ratio {ratio}");
    }

    #[test]
    fn cache_boost_applies_to_small_tensors() {
        let g = GpuSpec::a100();
        let small = g.effective_bandwidth(1024.0 * 1024.0); // 1 MiB
        let large = g.effective_bandwidth(16.0 * 1024.0 * 1024.0 * 1024.0); // 16 GiB
        assert!(small > g.mem_bw_gbs * 1e9);
        assert!(large < g.mem_bw_gbs * 1e9);
    }

    #[test]
    fn power_respects_floor_and_cap() {
        let g = GpuSpec::a100();
        assert!(g.power_w(0.0) >= g.idle_w + (g.tdp_w - g.idle_w) * g.busy_floor - 1e-9);
        assert!(g.power_w(5.0) <= g.tdp_w);
        assert!(g.power_w(1.0) > g.power_w(0.5));
    }

    #[test]
    fn fused_fp_is_cheaper_than_unfused_int() {
        let big = w(4096, 1);
        let g = GpuSpec::a100();
        let fp = SoftmaxKernelModel::fp_fused().cost(&g, &big);
        let int = SoftmaxKernelModel::int_unfused().cost(&g, &big);
        assert!(fp.latency_s < int.latency_s);
        assert!(fp.energy_j < int.energy_j);
    }

    #[test]
    fn energy_per_element_flattens_at_scale() {
        // the paper: "as sequence length and batch increase, the gap
        // decreases, hence the ratio remains almost constant"
        let m = SoftmaxKernelModel::int_unfused();
        let g = GpuSpec::a100();
        let mid = m.cost(&g, &w(2048, 8));
        let big = m.cost(&g, &w(4096, 32));
        let e_mid = mid.energy_j / w(2048, 8).total_elements as f64;
        let e_big = big.energy_j / w(4096, 32).total_elements as f64;
        let ratio = e_mid / e_big;
        assert!(
            ratio > 0.4 && ratio < 2.5,
            "per-element energy ratio {ratio}"
        );
    }
}
