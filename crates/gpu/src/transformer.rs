//! Transformer prefill runtime decomposition — the model behind Fig. 1
//! (softmax share of Llama2-7b runtime on A100 vs. sequence length).
//!
//! # Examples
//!
//! ```
//! use softmap_gpu::{transformer::PrefillModel, GpuSpec};
//! use softmap_llm::configs::llama2_7b;
//!
//! let m = PrefillModel::new(GpuSpec::a100());
//! let parts = m.runtime(&llama2_7b(), 1024, 1);
//! assert!(parts.softmax_fraction() < 0.05); // the paper: <= 3.34%
//! ```

use crate::{GpuSpec, SoftmaxKernelModel};
use softmap_llm::configs::{LlamaConfig, SoftmaxWorkload};

/// Runtime decomposition of one prefill forward pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillBreakdown {
    /// Dense projections + MLP GEMMs, seconds.
    pub linear_s: f64,
    /// Attention score/value GEMMs, seconds.
    pub attention_gemm_s: f64,
    /// Softmax, seconds.
    pub softmax_s: f64,
    /// Norms, residuals, embeddings (bandwidth bound), seconds.
    pub other_s: f64,
}

impl PrefillBreakdown {
    /// Total runtime, seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.linear_s + self.attention_gemm_s + self.softmax_s + self.other_s
    }

    /// Fraction of the runtime spent in softmax (Fig. 1's y-axis).
    #[must_use]
    pub fn softmax_fraction(&self) -> f64 {
        self.softmax_s / self.total_s()
    }
}

/// GEMM efficiencies and the softmax kernel choice for prefill.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefillModel {
    gpu: GpuSpec,
    /// Fraction of peak FP16 throughput achieved by large dense GEMMs.
    pub gemm_efficiency: f64,
    /// Fraction of peak achieved by the attention batched GEMMs.
    pub attention_efficiency: f64,
    /// The softmax kernel model (FP fused baseline by default).
    pub softmax: SoftmaxKernelModel,
    /// Bandwidth-bound bytes per token per layer for norms/residuals.
    pub other_bytes_per_token_layer: f64,
}

impl PrefillModel {
    /// Builds the model with calibrated defaults.
    #[must_use]
    pub fn new(gpu: GpuSpec) -> Self {
        Self {
            gpu,
            gemm_efficiency: 0.45,
            attention_efficiency: 0.35,
            softmax: SoftmaxKernelModel::fp_fused(),
            other_bytes_per_token_layer: 16.0 * 4096.0, // ~8 d-wide streams
        }
    }

    /// The GPU being modelled.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Runtime decomposition of a prefill pass.
    #[must_use]
    pub fn runtime(&self, cfg: &LlamaConfig, seq_len: usize, batch: usize) -> PrefillBreakdown {
        let d = cfg.d_model as f64;
        let dff = cfg.d_ff as f64;
        let kv = (cfg.kv_heads * cfg.head_dim()) as f64;
        let tokens = (batch * seq_len) as f64;
        let layers = cfg.layers as f64;

        // Projections: Q (d·d), K/V (d·kv each), O (d·d); MLP: SwiGLU
        // three matrices d·dff. 2 FLOPs per MAC.
        let linear_flops = layers * tokens * 2.0 * (2.0 * d * d + 2.0 * d * kv + 3.0 * d * dff);
        // Attention GEMMs: QK^T and PV, 2 × 2 × L² × d per layer/batch.
        let attn_flops = layers * batch as f64 * 4.0 * (seq_len as f64).powi(2) * d;

        let peak = self.gpu.fp16_tflops * 1e12;
        let linear_s = linear_flops / (peak * self.gemm_efficiency);
        let attention_gemm_s = attn_flops / (peak * self.attention_efficiency);

        let w = SoftmaxWorkload::prefill(cfg, seq_len, batch);
        let softmax_s = self.softmax.cost(&self.gpu, &w).latency_s;

        let other_bytes = layers * tokens * self.other_bytes_per_token_layer;
        let other_s =
            other_bytes / (self.gpu.mem_bw_gbs * 1e9) + layers * 4.0 * self.gpu.launch_us * 1e-6;

        PrefillBreakdown {
            linear_s,
            attention_gemm_s,
            softmax_s,
            other_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_llm::configs::{llama2_70b, llama2_7b};

    #[test]
    fn fig1_shape_small_fraction_below_1024() {
        let m = PrefillModel::new(GpuSpec::a100());
        for seq in [128, 256, 512, 1024] {
            let f = m.runtime(&llama2_7b(), seq, 1).softmax_fraction();
            assert!(f < 0.05, "seq {seq}: fraction {f}");
        }
    }

    #[test]
    fn fig1_shape_large_fraction_at_16k() {
        let m = PrefillModel::new(GpuSpec::a100());
        let f = m.runtime(&llama2_7b(), 16384, 1).softmax_fraction();
        assert!(f > 0.25 && f < 0.5, "fraction {f} (paper: about 38%)");
    }

    #[test]
    fn fraction_grows_with_sequence_length_beyond_1k() {
        // Below ~1K tokens, launch overhead and cache effects make the
        // (already tiny) fraction non-monotone; the paper only claims
        // "up to 3.34%" there. From 1K upward the rise is strict.
        let m = PrefillModel::new(GpuSpec::a100());
        let mut prev = 0.0;
        for seq in [1024, 2048, 4096, 8192, 16384] {
            let f = m.runtime(&llama2_7b(), seq, 1).softmax_fraction();
            assert!(f > prev, "fraction not increasing at {seq}");
            prev = f;
        }
    }

    #[test]
    fn bigger_models_take_longer() {
        let m = PrefillModel::new(GpuSpec::a100());
        let t7 = m.runtime(&llama2_7b(), 2048, 1).total_s();
        let t70 = m.runtime(&llama2_70b(), 2048, 1).total_s();
        assert!(t70 > t7 * 3.0);
    }

    #[test]
    fn amdahl_consistency_at_4096() {
        // The paper: a 6.7x softmax speedup cuts Llama2-70b total time
        // by 10.71% at L = 4096, implying a softmax fraction near 12.6%.
        let m = PrefillModel::new(GpuSpec::a100());
        let f = m.runtime(&llama2_70b(), 4096, 1).softmax_fraction();
        assert!(f > 0.06 && f < 0.22, "fraction {f}");
    }
}
