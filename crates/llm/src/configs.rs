//! Llama2-family architecture parameters and the softmax workload they
//! induce.
//!
//! # Examples
//!
//! ```
//! use softmap_llm::configs::{llama2_70b, SoftmaxWorkload};
//!
//! let w = SoftmaxWorkload::prefill(&llama2_70b(), 4096, 1);
//! assert_eq!(w.vectors_per_head_layer, 4096);
//! assert_eq!(w.total_elements, 80 * 64 * 4096 * 4096);
//! ```

/// Architecture parameters of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlamaConfig {
    /// Human-readable name (e.g. `"Llama2-7b"`).
    pub name: &'static str,
    /// Decoder layers.
    pub layers: usize,
    /// Query attention heads (softmax parallelism unit).
    pub heads: usize,
    /// Key/value heads (grouped-query attention; equals `heads` without
    /// GQA).
    pub kv_heads: usize,
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Feed-forward inner dimension.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum context length.
    pub max_seq: usize,
}

impl LlamaConfig {
    /// Head dimension (`d_model / heads`).
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }

    /// Approximate parameter count (embedding + attention + MLP),
    /// used for sanity checks only.
    #[must_use]
    pub fn approx_params(&self) -> u64 {
        let d = self.d_model as u64;
        let kv = (self.kv_heads * self.head_dim()) as u64;
        let per_layer = d * d // Wq
            + d * kv * 2      // Wk, Wv
            + d * d           // Wo
            + 3 * d * self.d_ff as u64; // SwiGLU gate/up/down
        per_layer * self.layers as u64 + 2 * d * self.vocab as u64
    }
}

/// Llama2-7b.
#[must_use]
pub fn llama2_7b() -> LlamaConfig {
    LlamaConfig {
        name: "Llama2-7b",
        layers: 32,
        heads: 32,
        kv_heads: 32,
        d_model: 4096,
        d_ff: 11008,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Llama2-13b.
#[must_use]
pub fn llama2_13b() -> LlamaConfig {
    LlamaConfig {
        name: "Llama2-13b",
        layers: 40,
        heads: 40,
        kv_heads: 40,
        d_model: 5120,
        d_ff: 13824,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Llama2-70b (grouped-query attention with 8 KV heads).
#[must_use]
pub fn llama2_70b() -> LlamaConfig {
    LlamaConfig {
        name: "Llama2-70b",
        layers: 80,
        heads: 64,
        kv_heads: 8,
        d_model: 8192,
        d_ff: 28672,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// All three evaluated models, in the paper's order.
#[must_use]
pub fn paper_models() -> Vec<LlamaConfig> {
    vec![llama2_7b(), llama2_13b(), llama2_70b()]
}

/// The attention-softmax workload of one forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftmaxWorkload {
    /// Softmax vectors per head per layer (`batch × seq_len` in
    /// prefill).
    pub vectors_per_head_layer: usize,
    /// Elements per vector (`seq_len` in prefill; full causal rows are
    /// modelled at their padded length, matching dense-kernel GPU
    /// implementations).
    pub vector_len: usize,
    /// Total scalar elements across the whole model
    /// (`layers × heads × vectors × len`).
    pub total_elements: u64,
    /// Layers (serialization depth).
    pub layers: usize,
    /// Query heads (parallelism width).
    pub heads: usize,
}

impl SoftmaxWorkload {
    /// Prefill workload: every query row of every head of every layer.
    #[must_use]
    pub fn prefill(cfg: &LlamaConfig, seq_len: usize, batch: usize) -> Self {
        let vectors = batch * seq_len;
        Self {
            vectors_per_head_layer: vectors,
            vector_len: seq_len,
            total_elements: (cfg.layers * cfg.heads) as u64 * vectors as u64 * seq_len as u64,
            layers: cfg.layers,
            heads: cfg.heads,
        }
    }

    /// Single-token decode workload: one query row per head per layer,
    /// attending over a `seq_len`-deep KV cache.
    #[must_use]
    pub fn decode(cfg: &LlamaConfig, seq_len: usize, batch: usize) -> Self {
        Self {
            vectors_per_head_layer: batch,
            vector_len: seq_len,
            total_elements: (cfg.layers * cfg.heads) as u64 * batch as u64 * seq_len as u64,
            layers: cfg.layers,
            heads: cfg.heads,
        }
    }
}

/// The tiny trainable stand-in configs used for the Table III/IV
/// perplexity analogs (see the README substitution notes). Two sizes mirror
/// the 7b/13b pairing.
#[must_use]
pub fn tiny_a() -> LlamaConfig {
    LlamaConfig {
        name: "tiny-A (7b stand-in)",
        layers: 2,
        heads: 4,
        kv_heads: 4,
        d_model: 64,
        d_ff: 128,
        vocab: 0, // set by the tokenizer at build time
        max_seq: 32,
    }
}

/// Larger stand-in (13b analog); see [`tiny_a`].
#[must_use]
pub fn tiny_b() -> LlamaConfig {
    LlamaConfig {
        name: "tiny-B (13b stand-in)",
        layers: 3,
        heads: 4,
        kv_heads: 4,
        d_model: 80,
        d_ff: 160,
        vocab: 0,
        max_seq: 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architectures() {
        let m7 = llama2_7b();
        assert_eq!(m7.head_dim(), 128);
        let m70 = llama2_70b();
        assert_eq!(m70.head_dim(), 128);
        assert_eq!(m70.kv_heads, 8);
        // parameter sanity: within 2x of the nominal sizes
        assert!(m7.approx_params() > 5_000_000_000 && m7.approx_params() < 9_000_000_000);
        assert!(m70.approx_params() > 50_000_000_000);
    }

    #[test]
    fn prefill_workload_scales_quadratically() {
        let cfg = llama2_7b();
        let a = SoftmaxWorkload::prefill(&cfg, 1024, 1);
        let b = SoftmaxWorkload::prefill(&cfg, 2048, 1);
        assert_eq!(b.total_elements, a.total_elements * 4);
        let c = SoftmaxWorkload::prefill(&cfg, 1024, 8);
        assert_eq!(c.total_elements, a.total_elements * 8);
    }

    #[test]
    fn decode_workload_scales_linearly() {
        let cfg = llama2_7b();
        let a = SoftmaxWorkload::decode(&cfg, 1024, 1);
        let b = SoftmaxWorkload::decode(&cfg, 2048, 1);
        assert_eq!(b.total_elements, a.total_elements * 2);
        assert_eq!(a.vectors_per_head_layer, 1);
    }

    #[test]
    fn heads_match_area_table_ratios() {
        // the paper's 0.64 : 0.81 : 1.28 mm² areas are proportional to
        // these head counts
        let hs: Vec<usize> = paper_models().iter().map(|m| m.heads).collect();
        assert_eq!(hs, vec![32, 40, 64]);
    }
}
