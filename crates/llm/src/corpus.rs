//! Deterministic synthetic corpus — the WikiText-2 stand-in.
//!
//! A small probabilistic grammar over English-like sentences generates a
//! corpus with learnable structure (agreement between subjects and
//! verbs, adjective order, punctuation). Perplexity differences caused
//! by attention-softmax quantization show up on any corpus the model has
//! actually learned; determinism (seeded generation) keeps the
//! experiment reproducible. See the README substitution notes.
//!
//! # Examples
//!
//! ```
//! use softmap_llm::corpus::Corpus;
//!
//! let c = Corpus::generate(42, 2_000);
//! assert!(c.tokens().len() >= 2_000);
//! assert!(c.vocab_size() > 20);
//! let text = c.decode(&c.tokens()[..8]);
//! assert!(!text.is_empty());
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const DETERMINERS: &[&str] = &["the", "a", "every", "some", "this"];
const ADJECTIVES: &[&str] = &[
    "quick", "lazy", "bright", "small", "quiet", "old", "young", "sharp", "round", "cold",
];
const NOUNS: &[&str] = &[
    "fox",
    "dog",
    "engineer",
    "processor",
    "table",
    "signal",
    "river",
    "model",
    "garden",
    "city",
    "student",
    "paper",
];
const VERBS: &[&str] = &[
    "chases", "builds", "reads", "watches", "crosses", "designs", "measures", "follows", "finds",
    "writes",
];
const ADVERBS: &[&str] = &["quickly", "carefully", "quietly", "often", "rarely"];
const CONNECTORS: &[&str] = &["and", "while", "because", "but"];
const PUNCT: &[&str] = &[".", ","];

/// A tokenized corpus with its vocabulary.
#[derive(Debug, Clone)]
pub struct Corpus {
    words: Vec<String>,
    tokens: Vec<usize>,
}

impl Corpus {
    /// Generates at least `min_tokens` tokens from the grammar with the
    /// given seed.
    #[must_use]
    pub fn generate(seed: u64, min_tokens: usize) -> Self {
        let mut vocab: Vec<String> = Vec::new();
        let mut index = std::collections::HashMap::new();
        let intern = |w: &str,
                      vocab: &mut Vec<String>,
                      index: &mut std::collections::HashMap<String, usize>| {
            *index.entry(w.to_string()).or_insert_with(|| {
                vocab.push(w.to_string());
                vocab.len() - 1
            })
        };
        // Intern the full vocabulary up front so ids are stable across
        // corpus lengths.
        for set in [
            DETERMINERS,
            ADJECTIVES,
            NOUNS,
            VERBS,
            ADVERBS,
            CONNECTORS,
            PUNCT,
        ] {
            for w in set {
                intern(w, &mut vocab, &mut index);
            }
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut tokens = Vec::with_capacity(min_tokens + 32);
        let push = |w: &str, tokens: &mut Vec<usize>| {
            tokens.push(index[w]);
        };

        while tokens.len() < min_tokens {
            // S -> NP VP [Conn S] .
            let mut clause = 0;
            loop {
                // NP
                push(
                    DETERMINERS[rng.random_range(0..DETERMINERS.len())],
                    &mut tokens,
                );
                if rng.random::<f32>() < 0.6 {
                    push(
                        ADJECTIVES[rng.random_range(0..ADJECTIVES.len())],
                        &mut tokens,
                    );
                }
                let subj = rng.random_range(0..NOUNS.len());
                push(NOUNS[subj], &mut tokens);
                // VP: verb choice correlates with the subject, giving the
                // model a learnable long-range dependency.
                let verb = (subj * 3 + rng.random_range(0..3)) % VERBS.len();
                push(VERBS[verb], &mut tokens);
                if rng.random::<f32>() < 0.3 {
                    push(ADVERBS[rng.random_range(0..ADVERBS.len())], &mut tokens);
                }
                // object NP
                push(
                    DETERMINERS[rng.random_range(0..DETERMINERS.len())],
                    &mut tokens,
                );
                if rng.random::<f32>() < 0.4 {
                    push(
                        ADJECTIVES[rng.random_range(0..ADJECTIVES.len())],
                        &mut tokens,
                    );
                }
                // object noun correlates with the verb
                let obj = (verb * 2 + rng.random_range(0..2)) % NOUNS.len();
                push(NOUNS[obj], &mut tokens);
                clause += 1;
                if clause < 3 && rng.random::<f32>() < 0.35 {
                    push(
                        CONNECTORS[rng.random_range(0..CONNECTORS.len())],
                        &mut tokens,
                    );
                } else {
                    break;
                }
            }
            push(".", &mut tokens);
        }
        Self {
            words: vocab,
            tokens,
        }
    }

    /// The token stream.
    #[must_use]
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.words.len()
    }

    /// Decodes token ids back to text (space separated).
    ///
    /// # Panics
    ///
    /// Panics if an id is out of the vocabulary.
    #[must_use]
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter()
            .map(|&i| self.words[i].as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Splits the corpus into train/validation token streams
    /// (`val_fraction` at the end becomes validation, mirroring the
    /// paper's use of a held-out set).
    #[must_use]
    pub fn split(&self, val_fraction: f64) -> (&[usize], &[usize]) {
        let val_len = ((self.tokens.len() as f64) * val_fraction) as usize;
        let cut = self.tokens.len() - val_len;
        (&self.tokens[..cut], &self.tokens[cut..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(7, 1000);
        let b = Corpus::generate(7, 1000);
        assert_eq!(a.tokens(), b.tokens());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(1, 1000);
        let b = Corpus::generate(2, 1000);
        assert_ne!(a.tokens(), b.tokens());
        // but the vocabulary is identical (interned up front)
        assert_eq!(a.vocab_size(), b.vocab_size());
    }

    #[test]
    fn tokens_in_vocab() {
        let c = Corpus::generate(3, 500);
        for &t in c.tokens() {
            assert!(t < c.vocab_size());
        }
    }

    #[test]
    fn split_preserves_tokens() {
        let c = Corpus::generate(3, 1000);
        let (train, val) = c.split(0.1);
        assert_eq!(train.len() + val.len(), c.tokens().len());
        assert!(val.len() >= c.tokens().len() / 20);
    }

    #[test]
    fn decode_round_trips_words() {
        let c = Corpus::generate(3, 100);
        let text = c.decode(&c.tokens()[..12]);
        assert_eq!(text.split(' ').count(), 12);
    }

    #[test]
    fn sentences_end_with_periods() {
        let c = Corpus::generate(5, 300);
        let text = c.decode(c.tokens());
        assert!(text.contains(" . "));
    }
}
