//! LLM substrate for the SoftmAP reproduction.
//!
//! The paper evaluates its integer-only softmax inside Llama2-7b/13b/70b
//! (perplexity on WikiText-2) and characterizes the softmax workload of
//! those models across sequence lengths and batch sizes. This crate
//! provides both halves of that substrate, built from scratch:
//!
//! * [`configs`] — Llama2 family architecture parameters and the
//!   softmax workload they induce (Figs. 1, 6–8),
//! * [`tensor`] — a minimal dense matrix type with the linear algebra
//!   the transformer needs,
//! * [`model`] — a decoder-only transformer (RMSNorm, causal multi-head
//!   attention with a *pluggable softmax*, GELU MLP) with full manual
//!   backpropagation,
//! * [`corpus`] — a deterministic synthetic corpus + word tokenizer
//!   (the WikiText-2 stand-in; see the README substitution notes),
//! * [`train`] — Adam and the training loop,
//! * [`perplexity`] — the paper's evaluation protocol (non-overlapping
//!   segments, exponentiated mean NLL),
//! * [`softmax_impls`] — float, clipped and integer-only attention
//!   softmax implementations.
//!
//! # Examples
//!
//! ```
//! use softmap_llm::configs::llama2_7b;
//!
//! let cfg = llama2_7b();
//! assert_eq!(cfg.layers, 32);
//! assert_eq!(cfg.heads, 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod corpus;
pub mod model;
pub mod perplexity;
pub mod softmax_impls;
pub mod tensor;
pub mod train;

/// Errors from the LLM substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// Dimension mismatch in a tensor operation.
    Shape(String),
    /// Invalid model or training configuration.
    BadConfig(String),
    /// A token id is outside the vocabulary.
    BadToken(usize),
    /// The attention softmax implementation failed.
    Softmax(String),
}

impl core::fmt::Display for LlmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Shape(msg) => write!(f, "shape error: {msg}"),
            Self::BadConfig(msg) => write!(f, "bad config: {msg}"),
            Self::BadToken(t) => write!(f, "token {t} out of vocabulary"),
            Self::Softmax(msg) => write!(f, "softmax error: {msg}"),
        }
    }
}

impl std::error::Error for LlmError {}
