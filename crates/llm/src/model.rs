//! A decoder-only transformer with manual backpropagation.
//!
//! Architecture (a faithful miniature of the paper's Fig. 2, minus
//! rotary embeddings): token + learned positional embeddings, pre-RMSNorm
//! causal multi-head attention with a *pluggable softmax*, residual
//! connections, pre-RMSNorm GELU MLP, final RMSNorm, and a linear output
//! head. Training always uses the exact float softmax; evaluation can
//! swap in the integer-only approximation (the paper's Tables III/IV
//! protocol).
//!
//! # Examples
//!
//! ```
//! use softmap_llm::model::{Transformer, ModelConfig};
//! use softmap_llm::softmax_impls::FloatSoftmax;
//!
//! let cfg = ModelConfig { vocab: 16, d_model: 16, heads: 2, layers: 1, d_ff: 32, max_seq: 8 };
//! let model = Transformer::new(&cfg, 42).unwrap();
//! let tokens = [1usize, 2, 3, 4, 5];
//! let nll = model.nll(&tokens, &FloatSoftmax).unwrap();
//! assert!(nll > 0.0);
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::softmax_impls::SoftmaxFn;
use crate::tensor::Matrix;
use crate::LlmError;

/// Dimensions of the tiny trainable transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden dimension.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Decoder layers.
    pub layers: usize,
    /// MLP inner dimension.
    pub d_ff: usize,
    /// Maximum sequence length (positional table size).
    pub max_seq: usize,
}

impl ModelConfig {
    fn validate(&self) -> Result<(), LlmError> {
        if self.vocab == 0 || self.d_model == 0 || self.heads == 0 || self.layers == 0 {
            return Err(LlmError::BadConfig("zero-sized dimension".into()));
        }
        if !self.d_model.is_multiple_of(self.heads) {
            return Err(LlmError::BadConfig(format!(
                "d_model {} not divisible by heads {}",
                self.d_model, self.heads
            )));
        }
        Ok(())
    }
}

/// Parameters of one decoder layer.
#[derive(Debug, Clone)]
pub struct LayerParams {
    /// Attention pre-norm gain.
    pub g1: Vec<f32>,
    /// Query projection.
    pub wq: Matrix,
    /// Key projection.
    pub wk: Matrix,
    /// Value projection.
    pub wv: Matrix,
    /// Output projection.
    pub wo: Matrix,
    /// MLP pre-norm gain.
    pub g2: Vec<f32>,
    /// MLP up projection.
    pub w1: Matrix,
    /// MLP down projection.
    pub w2: Matrix,
}

/// The full model.
#[derive(Debug, Clone)]
pub struct Transformer {
    cfg: ModelConfig,
    /// Token embedding (`vocab × d`).
    pub emb: Matrix,
    /// Positional embedding (`max_seq × d`).
    pub pos: Matrix,
    /// Decoder layers.
    pub layers: Vec<LayerParams>,
    /// Final norm gain.
    pub gf: Vec<f32>,
    /// Output head (`d × vocab`).
    pub wout: Matrix,
}

/// Gradients, shaped exactly like [`Transformer`]'s parameters.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// See [`Transformer::emb`].
    pub emb: Matrix,
    /// See [`Transformer::pos`].
    pub pos: Matrix,
    /// See [`Transformer::layers`].
    pub layers: Vec<LayerParams>,
    /// See [`Transformer::gf`].
    pub gf: Vec<f32>,
    /// See [`Transformer::wout`].
    pub wout: Matrix,
}

const RMS_EPS: f32 = 1e-5;

fn rmsnorm(x: &[f32], g: &[f32]) -> (Vec<f32>, f32) {
    let n = x.len() as f32;
    let ms = x.iter().map(|v| v * v).sum::<f32>() / n;
    let r = (ms + RMS_EPS).sqrt();
    let y = x.iter().zip(g).map(|(v, gi)| v * gi / r).collect();
    (y, r)
}

/// Backward of RMSNorm for one row: given upstream `dy`, input `x`,
/// gain `g`, and the cached `r`, returns `dx` and accumulates `dg`.
fn rmsnorm_back(dy: &[f32], x: &[f32], g: &[f32], r: f32, dg: &mut [f32]) -> Vec<f32> {
    let n = x.len() as f32;
    let mut dot = 0.0f32;
    for i in 0..x.len() {
        dg[i] += dy[i] * x[i] / r;
        dot += dy[i] * g[i] * x[i];
    }
    let k = dot / (n * r * r * r);
    (0..x.len()).map(|i| dy[i] * g[i] / r - x[i] * k).collect()
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

fn float_softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

struct LayerTape {
    x_in: Matrix,
    a: Matrix,
    rms1: Vec<f32>,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    probs: Vec<Matrix>, // per head, T×T
    attn_concat: Matrix,
    x_mid: Matrix,
    b: Matrix,
    rms2: Vec<f32>,
    h1: Matrix,
    gact: Matrix,
}

struct Tape {
    layers: Vec<LayerTape>,
    x_out: Matrix,
    f: Matrix,
    rmsf: Vec<f32>,
    logits: Matrix,
}

impl Transformer {
    /// Creates a model with seeded uniform initialization.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::BadConfig`] for invalid dimensions.
    pub fn new(cfg: &ModelConfig, seed: u64) -> Result<Self, LlmError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut init = |rows: usize, cols: usize, scale: f32| {
            let data = (0..rows * cols)
                .map(|_| (rng.random::<f32>() - 0.5) * 2.0 * scale)
                .collect();
            Matrix::from_vec(rows, cols, data).expect("sized correctly")
        };
        let d = cfg.d_model;
        let s_emb = 0.08;
        let s_w = 1.0 / (d as f32).sqrt();
        let layers = (0..cfg.layers)
            .map(|_| LayerParams {
                g1: vec![1.0; d],
                wq: init(d, d, s_w),
                wk: init(d, d, s_w),
                wv: init(d, d, s_w),
                wo: init(d, d, s_w),
                g2: vec![1.0; d],
                w1: init(d, cfg.d_ff, s_w),
                w2: init(cfg.d_ff, d, 1.0 / (cfg.d_ff as f32).sqrt()),
            })
            .collect();
        Ok(Self {
            cfg: *cfg,
            emb: init(cfg.vocab, d, s_emb),
            pos: init(cfg.max_seq, d, s_emb),
            layers,
            gf: vec![1.0; d],
            wout: init(d, cfg.vocab, s_w),
        })
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Zero gradients shaped like this model.
    #[must_use]
    pub fn zero_grads(&self) -> Gradients {
        Gradients {
            emb: Matrix::zeros(self.emb.rows(), self.emb.cols()),
            pos: Matrix::zeros(self.pos.rows(), self.pos.cols()),
            layers: self
                .layers
                .iter()
                .map(|l| LayerParams {
                    g1: vec![0.0; l.g1.len()],
                    wq: Matrix::zeros(l.wq.rows(), l.wq.cols()),
                    wk: Matrix::zeros(l.wk.rows(), l.wk.cols()),
                    wv: Matrix::zeros(l.wv.rows(), l.wv.cols()),
                    wo: Matrix::zeros(l.wo.rows(), l.wo.cols()),
                    g2: vec![0.0; l.g2.len()],
                    w1: Matrix::zeros(l.w1.rows(), l.w1.cols()),
                    w2: Matrix::zeros(l.w2.rows(), l.w2.cols()),
                })
                .collect(),
            gf: vec![0.0; self.gf.len()],
            wout: Matrix::zeros(self.wout.rows(), self.wout.cols()),
        }
    }

    /// Visits every parameter slice in a stable order (used by the
    /// optimizer; gradients visit in the same order).
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(&mut [f32])) {
        f(self.emb.data_mut());
        f(self.pos.data_mut());
        for l in &mut self.layers {
            f(&mut l.g1);
            f(l.wq.data_mut());
            f(l.wk.data_mut());
            f(l.wv.data_mut());
            f(l.wo.data_mut());
            f(&mut l.g2);
            f(l.w1.data_mut());
            f(l.w2.data_mut());
        }
        f(&mut self.gf);
        f(self.wout.data_mut());
    }

    /// Visits every gradient slice in the same order as
    /// [`Transformer::for_each_param_mut`]. The callback receives slices
    /// borrowed for the gradients' lifetime, so they may be collected.
    pub fn for_each_grad<'a>(grads: &'a Gradients, mut f: impl FnMut(&'a [f32])) {
        f(grads.emb.data());
        f(grads.pos.data());
        for l in &grads.layers {
            f(&l.g1);
            f(l.wq.data());
            f(l.wk.data());
            f(l.wv.data());
            f(l.wo.data());
            f(&l.g2);
            f(l.w1.data());
            f(l.w2.data());
        }
        f(&grads.gf);
        f(grads.wout.data());
    }

    fn check_tokens(&self, tokens: &[usize]) -> Result<(), LlmError> {
        if tokens.len() < 2 {
            return Err(LlmError::BadConfig("need at least 2 tokens".into()));
        }
        if tokens.len() > self.cfg.max_seq + 1 {
            return Err(LlmError::BadConfig(format!(
                "sequence {} exceeds max_seq {}",
                tokens.len() - 1,
                self.cfg.max_seq
            )));
        }
        for &t in tokens {
            if t >= self.cfg.vocab {
                return Err(LlmError::BadToken(t));
            }
        }
        Ok(())
    }

    /// Forward pass over `inputs` (length `T ≤ max_seq`), returning the
    /// logits and the tape for backprop. `softmax` is applied to each
    /// causal attention row.
    fn forward(&self, inputs: &[usize], softmax: &dyn SoftmaxFn) -> Result<Tape, LlmError> {
        let t_len = inputs.len();
        let d = self.cfg.d_model;
        let heads = self.cfg.heads;
        let dh = d / heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let mut x = Matrix::zeros(t_len, d);
        for (t, &tok) in inputs.iter().enumerate() {
            let e = self.emb.row(tok);
            let p = self.pos.row(t);
            let row = x.row_mut(t);
            for i in 0..d {
                row[i] = e[i] + p[i];
            }
        }

        let mut tapes = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let x_in = x.clone();
            let mut a = Matrix::zeros(t_len, d);
            let mut rms1 = vec![0.0; t_len];
            for (t, r_out) in rms1.iter_mut().enumerate() {
                let (row, r) = rmsnorm(x_in.row(t), &layer.g1);
                a.row_mut(t).copy_from_slice(&row);
                *r_out = r;
            }
            let q = a.matmul(&layer.wq)?;
            let k = a.matmul(&layer.wk)?;
            let v = a.matmul(&layer.wv)?;

            let mut probs = Vec::with_capacity(heads);
            let mut concat = Matrix::zeros(t_len, d);
            for h in 0..heads {
                let c0 = h * dh;
                let mut p_h = Matrix::zeros(t_len, t_len);
                for ti in 0..t_len {
                    // causal row: keys 0..=ti
                    let mut scores = vec![0.0f32; ti + 1];
                    let qrow = &q.row(ti)[c0..c0 + dh];
                    for (tj, s) in scores.iter_mut().enumerate() {
                        let krow = &k.row(tj)[c0..c0 + dh];
                        let mut acc = 0.0;
                        for (a_, b_) in qrow.iter().zip(krow) {
                            acc += a_ * b_;
                        }
                        *s = acc * scale;
                    }
                    let prow = softmax
                        .apply(&scores)
                        .map_err(|e| LlmError::Softmax(e.to_string()))?;
                    for (tj, &p) in prow.iter().enumerate() {
                        p_h.set(ti, tj, p);
                    }
                }
                for ti in 0..t_len {
                    let orow = concat.row_mut(ti);
                    for tj in 0..=ti {
                        let p = p_h.get(ti, tj);
                        if p == 0.0 {
                            continue;
                        }
                        let vrow = &v.row(tj)[c0..c0 + dh];
                        for i in 0..dh {
                            orow[c0 + i] += p * vrow[i];
                        }
                    }
                }
                probs.push(p_h);
            }

            let proj = concat.matmul(&layer.wo)?;
            let mut x_mid = x_in.clone();
            x_mid.add_assign(&proj)?;

            let mut b = Matrix::zeros(t_len, d);
            let mut rms2 = vec![0.0; t_len];
            for (t, r_out) in rms2.iter_mut().enumerate() {
                let (row, r) = rmsnorm(x_mid.row(t), &layer.g2);
                b.row_mut(t).copy_from_slice(&row);
                *r_out = r;
            }
            let h1 = b.matmul(&layer.w1)?;
            let mut gact = h1.clone();
            for vv in gact.data_mut() {
                *vv = gelu(*vv);
            }
            let mlp = gact.matmul(&layer.w2)?;
            let mut x_out = x_mid.clone();
            x_out.add_assign(&mlp)?;

            tapes.push(LayerTape {
                x_in,
                a,
                rms1,
                q,
                k,
                v,
                probs,
                attn_concat: concat,
                x_mid,
                b,
                rms2,
                h1,
                gact,
            });
            x = x_out;
        }

        let mut f_mat = Matrix::zeros(t_len, d);
        let mut rmsf = vec![0.0; t_len];
        for (t, r_out) in rmsf.iter_mut().enumerate() {
            let (row, r) = rmsnorm(x.row(t), &self.gf);
            f_mat.row_mut(t).copy_from_slice(&row);
            *r_out = r;
        }
        let logits = f_mat.matmul(&self.wout)?;
        Ok(Tape {
            layers: tapes,
            x_out: x,
            f: f_mat,
            rmsf,
            logits,
        })
    }

    /// Mean negative log-likelihood of `tokens[1..]` given `tokens[..n-1]`
    /// under the chosen attention softmax.
    ///
    /// # Errors
    ///
    /// Token/shape errors as in training.
    pub fn nll(&self, tokens: &[usize], softmax: &dyn SoftmaxFn) -> Result<f64, LlmError> {
        self.check_tokens(tokens)?;
        let inputs = &tokens[..tokens.len() - 1];
        let targets = &tokens[1..];
        let tape = self.forward(inputs, softmax)?;
        let mut nll = 0.0f64;
        for (t, &target) in targets.iter().enumerate() {
            let mut row = tape.logits.row(t).to_vec();
            float_softmax_row(&mut row);
            nll -= f64::from(row[target].max(1e-30)).ln();
        }
        Ok(nll / targets.len() as f64)
    }

    /// Forward + backward on one window: returns the mean loss and
    /// accumulates gradients into `grads`. Training always uses the
    /// exact float softmax.
    ///
    /// # Errors
    ///
    /// Token/shape errors as in [`Transformer::nll`].
    #[allow(clippy::too_many_lines)]
    pub fn train_step(&self, tokens: &[usize], grads: &mut Gradients) -> Result<f64, LlmError> {
        self.check_tokens(tokens)?;
        let inputs = &tokens[..tokens.len() - 1];
        let targets = &tokens[1..];
        let softmax = crate::softmax_impls::FloatSoftmax;
        let tape = self.forward(inputs, &softmax)?;

        let t_len = inputs.len();
        let d = self.cfg.d_model;
        let heads = self.cfg.heads;
        let dh = d / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let inv_t = 1.0 / t_len as f32;

        // CE backward: dlogits = (softmax(logits) - onehot) / T.
        let mut loss = 0.0f64;
        let mut dlogits = Matrix::zeros(t_len, self.cfg.vocab);
        for (t, &target) in targets.iter().enumerate() {
            let mut row = tape.logits.row(t).to_vec();
            float_softmax_row(&mut row);
            loss -= f64::from(row[target].max(1e-30)).ln();
            let drow = dlogits.row_mut(t);
            for (i, &p) in row.iter().enumerate() {
                drow[i] = (p - f32::from(u8::from(i == target))) * inv_t;
            }
        }
        loss /= t_len as f64;

        // Output head and final norm.
        grads
            .wout
            .add_assign(&tape.f.transpose().matmul(&dlogits)?)?;
        let df = dlogits.matmul_t(&self.wout)?;
        let mut dx = Matrix::zeros(t_len, d);
        for t in 0..t_len {
            let dxr = rmsnorm_back(
                df.row(t),
                tape.x_out.row(t),
                &self.gf,
                tape.rmsf[t],
                &mut grads.gf,
            );
            dx.row_mut(t).copy_from_slice(&dxr);
        }

        // Layers in reverse.
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let tp = &tape.layers[li];
            let gl = &mut grads.layers[li];

            // MLP: x_out = x_mid + gelu(b W1) W2
            let dmlp = &dx; // gradient of the residual sum
            gl.w2.add_assign(&tp.gact.transpose().matmul(dmlp)?)?;
            let dgact = dmlp.matmul_t(&layer.w2)?;
            let mut dh1 = dgact;
            for (g_, h_) in dh1.data_mut().iter_mut().zip(tp.h1.data()) {
                *g_ *= gelu_grad(*h_);
            }
            gl.w1.add_assign(&tp.b.transpose().matmul(&dh1)?)?;
            let db = dh1.matmul_t(&layer.w1)?;
            let mut dx_mid = dx.clone(); // residual path
            for t in 0..t_len {
                let dxr = rmsnorm_back(
                    db.row(t),
                    tp.x_mid.row(t),
                    &layer.g2,
                    tp.rms2[t],
                    &mut gl.g2,
                );
                let row = dx_mid.row_mut(t);
                for i in 0..d {
                    row[i] += dxr[i];
                }
            }

            // Attention: x_mid = x_in + (concat O_h) Wo
            gl.wo
                .add_assign(&tp.attn_concat.transpose().matmul(&dx_mid)?)?;
            let dconcat = dx_mid.matmul_t(&layer.wo)?;

            let mut dq = Matrix::zeros(t_len, d);
            let mut dk = Matrix::zeros(t_len, d);
            let mut dv = Matrix::zeros(t_len, d);
            for h in 0..heads {
                let c0 = h * dh;
                let p_h = &tp.probs[h];
                for ti in 0..t_len {
                    // dP = dO V^T (row ti), restricted to the causal span
                    let do_row = &dconcat.row(ti)[c0..c0 + dh];
                    let mut dp = vec![0.0f32; ti + 1];
                    for (tj, dpj) in dp.iter_mut().enumerate() {
                        let vrow = &tp.v.row(tj)[c0..c0 + dh];
                        let mut acc = 0.0;
                        for (a_, b_) in do_row.iter().zip(vrow) {
                            acc += a_ * b_;
                        }
                        *dpj = acc;
                    }
                    // dV += P^T dO
                    for tj in 0..=ti {
                        let p = p_h.get(ti, tj);
                        if p != 0.0 {
                            let dvrow = dv.row_mut(tj);
                            for i in 0..dh {
                                dvrow[c0 + i] += p * do_row[i];
                            }
                        }
                    }
                    // softmax backward: dS = P ⊙ (dP - Σ dP⊙P)
                    let mut dot = 0.0f32;
                    for (tj, &dpj) in dp.iter().enumerate() {
                        dot += dpj * p_h.get(ti, tj);
                    }
                    let mut ds = vec![0.0f32; ti + 1];
                    for (tj, dsj) in ds.iter_mut().enumerate() {
                        *dsj = p_h.get(ti, tj) * (dp[tj] - dot);
                    }
                    // dQ += dS K · scale; dK += dSᵀ Q · scale
                    let qrow_grad = dq.row_mut(ti);
                    for (tj, &dsj) in ds.iter().enumerate() {
                        if dsj == 0.0 {
                            continue;
                        }
                        let krow = &tp.k.row(tj)[c0..c0 + dh];
                        for i in 0..dh {
                            qrow_grad[c0 + i] += dsj * krow[i] * scale;
                        }
                    }
                    let qrow = tp.q.row(ti)[c0..c0 + dh].to_vec();
                    for (tj, &dsj) in ds.iter().enumerate() {
                        if dsj == 0.0 {
                            continue;
                        }
                        let krow_grad = dk.row_mut(tj);
                        for i in 0..dh {
                            krow_grad[c0 + i] += dsj * qrow[i] * scale;
                        }
                    }
                }
            }

            gl.wq.add_assign(&tp.a.transpose().matmul(&dq)?)?;
            gl.wk.add_assign(&tp.a.transpose().matmul(&dk)?)?;
            gl.wv.add_assign(&tp.a.transpose().matmul(&dv)?)?;
            let mut da = dq.matmul_t(&layer.wq)?;
            da.add_assign(&dk.matmul_t(&layer.wk)?)?;
            da.add_assign(&dv.matmul_t(&layer.wv)?)?;

            // back through the attention pre-norm, plus the residual
            let mut dx_in = dx_mid.clone();
            for t in 0..t_len {
                let dxr =
                    rmsnorm_back(da.row(t), tp.x_in.row(t), &layer.g1, tp.rms1[t], &mut gl.g1);
                let row = dx_in.row_mut(t);
                for i in 0..d {
                    row[i] += dxr[i];
                }
            }
            dx = dx_in;
        }

        // Embeddings.
        for (t, &tok) in inputs.iter().enumerate() {
            let drow = dx.row(t);
            let erow = grads.emb.row_mut(tok);
            for i in 0..d {
                erow[i] += drow[i];
            }
            let prow = grads.pos.row_mut(t);
            for i in 0..d {
                prow[i] += drow[i];
            }
        }
        Ok(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax_impls::FloatSoftmax;

    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            vocab: 11,
            d_model: 8,
            heads: 2,
            layers: 2,
            d_ff: 16,
            max_seq: 6,
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let m = Transformer::new(&tiny_cfg(), 7).unwrap();
        let toks = [1usize, 2, 3, 4, 5];
        let a = m.nll(&toks, &FloatSoftmax).unwrap();
        let b = m.nll(&toks, &FloatSoftmax).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Transformer::new(&tiny_cfg(), 1).unwrap();
        let b = Transformer::new(&tiny_cfg(), 2).unwrap();
        let toks = [1usize, 2, 3, 4, 5];
        assert_ne!(
            a.nll(&toks, &FloatSoftmax).unwrap(),
            b.nll(&toks, &FloatSoftmax).unwrap()
        );
    }

    #[test]
    fn rejects_invalid_tokens_and_lengths() {
        let m = Transformer::new(&tiny_cfg(), 7).unwrap();
        assert!(matches!(
            m.nll(&[1], &FloatSoftmax),
            Err(LlmError::BadConfig(_))
        ));
        assert!(matches!(
            m.nll(&[1, 99], &FloatSoftmax),
            Err(LlmError::BadToken(99))
        ));
        let long = vec![1usize; 20];
        assert!(matches!(
            m.nll(&long, &FloatSoftmax),
            Err(LlmError::BadConfig(_))
        ));
    }

    #[test]
    fn train_loss_matches_nll() {
        let m = Transformer::new(&tiny_cfg(), 7).unwrap();
        let toks = [1usize, 2, 3, 4, 5];
        let mut g = m.zero_grads();
        let loss = m.train_step(&toks, &mut g).unwrap();
        let nll = m.nll(&toks, &FloatSoftmax).unwrap();
        assert!((loss - nll).abs() < 1e-6, "loss {loss} vs nll {nll}");
    }

    /// Finite-difference gradient check — the correctness anchor for the
    /// entire backward pass.
    #[test]
    fn gradient_check() {
        let cfg = ModelConfig {
            vocab: 7,
            d_model: 6,
            heads: 2,
            layers: 1,
            d_ff: 8,
            max_seq: 4,
        };
        let mut m = Transformer::new(&cfg, 3).unwrap();
        let toks = [1usize, 4, 2, 6, 3];
        let mut grads = m.zero_grads();
        m.train_step(&toks, &mut grads).unwrap();

        // collect analytic grads in visit order
        let mut analytic: Vec<Vec<f32>> = Vec::new();
        Transformer::for_each_grad(&grads, |g| analytic.push(g.to_vec()));

        // numeric check on a few entries of every parameter tensor
        let eps = 3e-3f32;
        let n_tensors = analytic.len();
        #[allow(clippy::needless_range_loop)]
        for ti in 0..n_tensors {
            let len = analytic[ti].len();
            for &ei in &[0usize, len / 2, len - 1] {
                let mut plus = f64::NAN;
                let mut minus = f64::NAN;
                for (dir, out) in [(eps, &mut plus), (-eps, &mut minus)] {
                    let mut idx = 0usize;
                    m.for_each_param_mut(|p| {
                        if idx == ti {
                            p[ei] += dir;
                        }
                        idx += 1;
                    });
                    *out = m.nll(&toks, &FloatSoftmax).unwrap();
                    let mut idx2 = 0usize;
                    m.for_each_param_mut(|p| {
                        if idx2 == ti {
                            p[ei] -= dir;
                        }
                        idx2 += 1;
                    });
                }
                let numeric = (plus - minus) / (2.0 * f64::from(eps));
                let got = f64::from(analytic[ti][ei]);
                let denom = numeric.abs().max(got.abs()).max(1e-4);
                assert!(
                    ((numeric - got).abs() / denom) < 0.08,
                    "tensor {ti} elem {ei}: numeric {numeric}, analytic {got}"
                );
            }
        }
        assert!(n_tensors > 0);
    }

    #[test]
    fn gradients_nonzero_after_step() {
        let m = Transformer::new(&tiny_cfg(), 7).unwrap();
        let mut g = m.zero_grads();
        m.train_step(&[1, 2, 3, 4, 5], &mut g).unwrap();
        assert!(g.wout.norm() > 0.0);
        assert!(g.emb.norm() > 0.0);
        assert!(g.layers[0].wq.norm() > 0.0);
        assert!(g.layers[1].w2.norm() > 0.0);
    }
}
