//! The paper's perplexity protocol: split the validation stream into
//! non-overlapping segments of the model's context width, evaluate
//! next-token log-probabilities, and report the exponentiated mean NLL
//! (Section IV of the paper).
//!
//! # Examples
//!
//! ```
//! use softmap_llm::corpus::Corpus;
//! use softmap_llm::train::{train_language_model, TrainConfig};
//! use softmap_llm::perplexity::perplexity;
//! use softmap_llm::softmax_impls::FloatSoftmax;
//!
//! let corpus = Corpus::generate(42, 4_000);
//! let cfg = TrainConfig { steps: 20, ..TrainConfig::default() };
//! let trained = train_language_model(&corpus, &cfg).unwrap();
//! let (_, val) = corpus.split(0.1);
//! let ppl = perplexity(&trained.model, val, &FloatSoftmax).unwrap();
//! assert!(ppl > 1.0);
//! ```

use crate::model::Transformer;
use crate::softmax_impls::SoftmaxFn;
use crate::LlmError;

/// Computes perplexity of `tokens` under `model` with the given
/// attention softmax, using non-overlapping segments of the model's
/// full context (the paper's protocol, step 2: "split into
/// non-overlapping segments of width 2048, the full context size").
///
/// # Errors
///
/// * [`LlmError::BadConfig`] if fewer than one full segment fits.
/// * Propagates evaluation errors.
pub fn perplexity(
    model: &Transformer,
    tokens: &[usize],
    softmax: &dyn SoftmaxFn,
) -> Result<f64, LlmError> {
    let window = model.config().max_seq + 1;
    if tokens.len() < window {
        return Err(LlmError::BadConfig(format!(
            "validation stream of {} tokens is shorter than one segment ({window})",
            tokens.len()
        )));
    }
    let mut total_nll = 0.0f64;
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + window <= tokens.len() {
        total_nll += model.nll(&tokens[start..start + window], softmax)?;
        segments += 1;
        start += window - 1; // non-overlapping prediction targets
    }
    Ok((total_nll / segments as f64).exp())
}

/// Perplexities of several softmax implementations on the same stream,
/// in input order — the inner loop of the Table III/IV experiments.
///
/// # Errors
///
/// As [`perplexity`].
pub fn perplexity_sweep(
    model: &Transformer,
    tokens: &[usize],
    softmaxes: &[&dyn SoftmaxFn],
) -> Result<Vec<f64>, LlmError> {
    softmaxes
        .iter()
        .map(|s| perplexity(model, tokens, *s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::softmax_impls::{ClippedSoftmax, FloatSoftmax, IntApproxSoftmax};
    use crate::train::{train_language_model, TrainConfig};
    use softmap_softmax::PrecisionConfig;

    fn trained() -> (Transformer, Vec<usize>) {
        let corpus = Corpus::generate(42, 8_000);
        let cfg = TrainConfig {
            steps: 120,
            batch: 8,
            ..TrainConfig::default()
        };
        let t = train_language_model(&corpus, &cfg).unwrap();
        let (_, val) = corpus.split(0.1);
        (t.model, val.to_vec())
    }

    #[test]
    fn trained_model_beats_uniform() {
        let (model, val) = trained();
        let ppl = perplexity(&model, &val, &FloatSoftmax).unwrap();
        let uniform = model.config().vocab as f64;
        assert!(
            ppl < uniform * 0.6,
            "trained ppl {ppl} should beat uniform {uniform}"
        );
    }

    #[test]
    fn int_softmax_close_to_float_at_good_precision() {
        let (model, val) = trained();
        let fp = perplexity(&model, &val, &FloatSoftmax).unwrap();
        let int8 = IntApproxSoftmax::new(PrecisionConfig::new(8, 0, 16)).unwrap();
        let ppl8 = perplexity(&model, &val, &int8).unwrap();
        assert!(
            ppl8 < fp * 1.25,
            "int M=8 ppl {ppl8} should be near FP {fp}"
        );
    }

    #[test]
    fn clipping_alone_is_mild() {
        let (model, val) = trained();
        let fp = perplexity(&model, &val, &FloatSoftmax).unwrap();
        let clipped = perplexity(&model, &val, &ClippedSoftmax { tc: -7.0 }).unwrap();
        assert!(clipped < fp * 1.15, "clipped {clipped} vs fp {fp}");
    }

    #[test]
    fn too_short_stream_is_an_error() {
        let (model, _) = trained();
        assert!(perplexity(&model, &[1, 2, 3], &FloatSoftmax).is_err());
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let (model, val) = trained();
        let fp = FloatSoftmax;
        let cl = ClippedSoftmax { tc: -7.0 };
        let sweep = perplexity_sweep(&model, &val, &[&fp, &cl]).unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0], perplexity(&model, &val, &fp).unwrap());
    }
}
