//! Pluggable attention-softmax implementations.
//!
//! The paper's Tables III/IV swap the exact softmax inside every
//! attention head for the integer-only approximation and measure the
//! end-to-end perplexity change. These adapters are that swap point.
//!
//! # Examples
//!
//! ```
//! use softmap_llm::softmax_impls::{FloatSoftmax, SoftmaxFn};
//!
//! let p = FloatSoftmax.apply(&[0.0, 0.0]).unwrap();
//! assert!((p[0] - 0.5).abs() < 1e-6);
//! ```

use softmap_softmax::{IntSoftmax, PrecisionConfig};

/// An attention-row softmax: scores in, weights out.
///
/// Implementations may return weights that do not sum exactly to one
/// (the integer pipeline's floor rounding and sum truncation are the
/// object of study); attention consumes the weights as-is, exactly like
/// the hardware would.
pub trait SoftmaxFn {
    /// Applies the softmax to one row of attention scores.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on failure (empty rows,
    /// configuration errors).
    fn apply(&self, scores: &[f32]) -> Result<Vec<f32>, String>;

    /// Display name for tables.
    fn name(&self) -> String;

    /// Applies the softmax to one row, reusing a caller-held scratch
    /// buffer across calls (the pooled-worker path). The default
    /// ignores the scratch; implementations that stage per-row
    /// intermediates (e.g. the `f64` widening of the integer pipeline)
    /// override it so steady-state batches stop reallocating.
    ///
    /// # Errors
    ///
    /// As [`SoftmaxFn::apply`].
    fn apply_scratch(
        &self,
        scores: &[f32],
        scratch: &mut SoftmaxScratch,
    ) -> Result<Vec<f32>, String> {
        let _ = scratch;
        self.apply(scores)
    }

    /// Applies the softmax to a batch of attention rows, in order.
    /// The default runs sequentially (object-safe); `Sync`
    /// implementations get a multi-threaded path via
    /// [`apply_batch_parallel`].
    ///
    /// # Errors
    ///
    /// The first failing row's error.
    fn apply_batch(&self, rows: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, String> {
        rows.iter().map(|r| self.apply(r)).collect()
    }
}

/// Reusable per-worker staging buffers for [`SoftmaxFn::apply_scratch`].
#[derive(Default)]
pub struct SoftmaxScratch {
    /// Widened scores (the integer pipeline consumes `f64`).
    pub scores64: Vec<f64>,
    /// Implementation-defined worker state for softmax backends that
    /// live above this crate (e.g. the AP mapping keeps a persistent
    /// simulated tile plus its cached-plan slot here, so batched
    /// replay stays zero-allocation per row). Initialized lazily by
    /// the implementation; a foreign type in the slot is simply
    /// replaced.
    pub ext: Option<Box<dyn std::any::Any + Send>>,
}

impl core::fmt::Debug for SoftmaxScratch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SoftmaxScratch")
            .field("scores64", &self.scores64)
            .field("ext", &self.ext.as_ref().map(|_| "<worker state>"))
            .finish()
    }
}

/// Applies `sm` to every attention row of a batch across host threads,
/// preserving input order — one persistent worker state (scratch
/// buffers) per thread, mirroring how vectors stream through fixed
/// tiles in the deployed accelerator. Identical to
/// [`SoftmaxFn::apply_batch`], only faster on multicore hosts; on
/// failure the remaining rows are cancelled.
///
/// # Errors
///
/// The first (by input order) failing row's error.
pub fn apply_batch_parallel<S: SoftmaxFn + Sync>(
    sm: &S,
    rows: &[Vec<f32>],
) -> Result<Vec<Vec<f32>>, String> {
    softmap_par::try_parallel_map_with(rows, SoftmaxScratch::default, |scratch, r| {
        sm.apply_scratch(r, scratch)
    })
}

/// The exact float softmax (training and FP baselines).
#[derive(Debug, Clone, Copy, Default)]
pub struct FloatSoftmax;

impl SoftmaxFn for FloatSoftmax {
    fn apply(&self, scores: &[f32]) -> Result<Vec<f32>, String> {
        if scores.is_empty() {
            return Err("empty attention row".into());
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        Ok(exps.into_iter().map(|e| e / sum).collect())
    }

    fn name(&self) -> String {
        "FP softmax".into()
    }
}

/// Float softmax with inputs clipped to `[tc, 0]` after stabilization —
/// isolates the clipping error from the quantization error.
#[derive(Debug, Clone, Copy)]
pub struct ClippedSoftmax {
    /// Clipping threshold (negative).
    pub tc: f32,
}

impl SoftmaxFn for ClippedSoftmax {
    fn apply(&self, scores: &[f32]) -> Result<Vec<f32>, String> {
        if scores.is_empty() {
            return Err("empty attention row".into());
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores
            .iter()
            .map(|&s| (s - max).clamp(self.tc, 0.0).exp())
            .collect();
        let sum: f32 = exps.iter().sum();
        Ok(exps.into_iter().map(|e| e / sum).collect())
    }

    fn name(&self) -> String {
        format!("FP softmax clipped to [{}, 0]", self.tc)
    }
}

/// The integer-only SoftmAP approximation at one precision point.
#[derive(Debug, Clone)]
pub struct IntApproxSoftmax {
    pipeline: IntSoftmax,
}

impl IntApproxSoftmax {
    /// Builds the adapter.
    ///
    /// # Errors
    ///
    /// Returns the configuration error message if the precision point is
    /// inconsistent.
    pub fn new(cfg: PrecisionConfig) -> Result<Self, String> {
        Ok(Self {
            pipeline: IntSoftmax::new(cfg).map_err(|e| e.to_string())?,
        })
    }

    /// The underlying precision configuration.
    #[must_use]
    pub fn config(&self) -> &PrecisionConfig {
        self.pipeline.config()
    }
}

impl SoftmaxFn for IntApproxSoftmax {
    fn apply(&self, scores: &[f32]) -> Result<Vec<f32>, String> {
        self.apply_scratch(scores, &mut SoftmaxScratch::default())
    }

    fn apply_scratch(
        &self,
        scores: &[f32],
        scratch: &mut SoftmaxScratch,
    ) -> Result<Vec<f32>, String> {
        scratch.scores64.clear();
        scratch
            .scores64
            .extend(scores.iter().map(|&s| f64::from(s)));
        let out = self
            .pipeline
            .run_floats(&scratch.scores64)
            .map_err(|e| e.to_string())?;
        Ok(out.probabilities.iter().map(|&p| p as f32).collect())
    }

    fn name(&self) -> String {
        format!("IntSoftmax {}", self.pipeline.config().label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_softmax_normalizes() {
        let p = FloatSoftmax.apply(&[1.0, 2.0, 3.0]).unwrap();
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn clipped_equals_float_when_in_range() {
        let scores = [0.0, -1.0, -2.0];
        let a = FloatSoftmax.apply(&scores).unwrap();
        let b = ClippedSoftmax { tc: -7.0 }.apply(&scores).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn int_softmax_close_to_float_at_high_precision() {
        let int = IntApproxSoftmax::new(PrecisionConfig::new(8, 0, 20)).unwrap();
        let scores = [0.0, -0.5, -1.0, -2.0];
        let a = FloatSoftmax.apply(&scores).unwrap();
        let b = int.apply(&scores).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.03, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_rows_are_errors() {
        assert!(FloatSoftmax.apply(&[]).is_err());
        assert!(ClippedSoftmax { tc: -7.0 }.apply(&[]).is_err());
        let int = IntApproxSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert!(int.apply(&[]).is_err());
    }

    #[test]
    fn names_are_informative() {
        assert!(FloatSoftmax.name().contains("FP"));
        let int = IntApproxSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert!(int.name().contains("M=6"));
    }

    #[test]
    fn batched_application_matches_per_row() {
        let int = IntApproxSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let rows: Vec<Vec<f32>> = (0..7)
            .map(|v| (0..12).map(|i| -((v * 5 + i) as f32) * 0.3).collect())
            .collect();
        let sequential = int.apply_batch(&rows).unwrap();
        let parallel = apply_batch_parallel(&int, &rows).unwrap();
        assert_eq!(sequential, parallel);
        for (row, got) in rows.iter().zip(&sequential) {
            assert_eq!(&int.apply(row).unwrap(), got);
        }
    }

    #[test]
    fn batched_application_propagates_errors() {
        let rows = vec![vec![0.0f32, -1.0], vec![]];
        assert!(FloatSoftmax.apply_batch(&rows).is_err());
        assert!(apply_batch_parallel(&FloatSoftmax, &rows).is_err());
    }
}
