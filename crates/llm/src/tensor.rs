//! A minimal row-major matrix with the dense linear algebra the tiny
//! transformer needs (no broadcasting, no views — simple and checkable).
//!
//! # Examples
//!
//! ```
//! use softmap_llm::tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.get(1, 0), 3.0);
//! ```

use crate::LlmError;

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Errors
    ///
    /// Returns a shape error if rows have unequal lengths or the input
    /// is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, LlmError> {
        let r = rows.len();
        if r == 0 {
            return Err(LlmError::Shape("no rows".into()));
        }
        let c = rows[0].len();
        if rows.iter().any(|row| row.len() != c) {
            return Err(LlmError::Shape("ragged rows".into()));
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, LlmError> {
        if data.len() != rows * cols {
            return Err(LlmError::Shape(format!(
                "{}x{} needs {} elements, got {}",
                rows,
                cols,
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data access.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data access.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self × other`.
    ///
    /// # Errors
    ///
    /// Returns a shape error on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LlmError> {
        if self.cols != other.rows {
            return Err(LlmError::Shape(format!(
                "matmul {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product with `other` transposed (`self × otherᵀ`).
    ///
    /// # Errors
    ///
    /// Returns a shape error on inner-dimension mismatch.
    pub fn matmul_t(&self, other: &Matrix) -> Result<Matrix, LlmError> {
        if self.cols != other.cols {
            return Err(LlmError::Shape(format!(
                "matmul_t {}x{} by {}x{}ᵀ",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        Ok(out)
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Errors
    ///
    /// Returns a shape error on dimension mismatch.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<(), LlmError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LlmError::Shape("add_assign shape mismatch".into()));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scale.
    pub fn scale(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_t_equals_matmul_of_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]).unwrap();
        let direct = a.matmul_t(&b).unwrap();
        let via_t = a.matmul(&b.transpose()).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_t(&Matrix::zeros(4, 2)).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        a.add_assign(&b).unwrap();
        a.scale(2.0);
        assert_eq!(a.row(0), &[8.0, 12.0]);
        assert!((a.norm() - (64.0f32 + 144.0).sqrt()).abs() < 1e-6);
    }
}
