//! Adam optimizer and the training loop.
//!
//! # Examples
//!
//! Train a miniature model until its loss drops (see
//! [`train_language_model`] for the end-to-end path used by the
//! perplexity experiments):
//!
//! ```
//! use softmap_llm::corpus::Corpus;
//! use softmap_llm::train::{train_language_model, TrainConfig};
//!
//! let corpus = Corpus::generate(42, 4_000);
//! let cfg = TrainConfig { steps: 30, ..TrainConfig::default() };
//! let trained = train_language_model(&corpus, &cfg).unwrap();
//! assert!(trained.final_loss < trained.initial_loss);
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::corpus::Corpus;
use crate::model::{Gradients, ModelConfig, Transformer};
use crate::LlmError;

/// Adam optimizer state (one moment pair per parameter tensor).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an optimizer for `model` with learning rate `lr`.
    #[must_use]
    pub fn new(model: &mut Transformer, lr: f32) -> Self {
        let mut sizes = Vec::new();
        model.for_each_param_mut(|p| sizes.push(p.len()));
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: sizes.iter().map(|&n| vec![0.0; n]).collect(),
            v: sizes.iter().map(|&n| vec![0.0; n]).collect(),
        }
    }

    /// Applies one update from accumulated gradients (scaled by
    /// `1/grad_scale`, e.g. the number of accumulated windows).
    pub fn step(&mut self, model: &mut Transformer, grads: &Gradients, grad_scale: f32) {
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        let mut flat_grads: Vec<&[f32]> = Vec::with_capacity(self.m.len());
        Transformer::for_each_grad(grads, |g| flat_grads.push(g));
        // SAFETY of ordering: for_each_param_mut and for_each_grad visit
        // tensors in the same documented order.
        let mut idx = 0usize;
        let (m, v) = (&mut self.m, &mut self.v);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        model.for_each_param_mut(|p| {
            let g = flat_grads[idx];
            let mi = &mut m[idx];
            let vi = &mut v[idx];
            for j in 0..p.len() {
                let gj = g[j] / grad_scale;
                mi[j] = b1 * mi[j] + (1.0 - b1) * gj;
                vi[j] = b2 * vi[j] + (1.0 - b2) * gj * gj;
                let mhat = mi[j] / bc1;
                let vhat = vi[j] / bc2;
                p[j] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Windows accumulated per step.
    pub batch: usize,
    /// Window length in tokens (model context + 1 target).
    pub window: usize,
    /// Learning rate.
    pub lr: f32,
    /// Model dimensions.
    pub model: ModelConfig,
    /// Initialization / batching seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            steps: 300,
            batch: 8,
            window: 33,
            lr: 3e-3,
            model: ModelConfig {
                vocab: 0, // filled from the corpus
                d_model: 64,
                heads: 4,
                layers: 2,
                d_ff: 128,
                max_seq: 32,
            },
            seed: 42,
        }
    }
}

/// A trained model plus its training trajectory endpoints.
#[derive(Debug)]
pub struct Trained {
    /// The trained model.
    pub model: Transformer,
    /// Mean loss of the first step.
    pub initial_loss: f64,
    /// Mean loss of the last step.
    pub final_loss: f64,
}

/// Trains a language model on the corpus's training split.
///
/// # Errors
///
/// Propagates configuration and token errors.
pub fn train_language_model(corpus: &Corpus, cfg: &TrainConfig) -> Result<Trained, LlmError> {
    let (train_tokens, _) = corpus.split(0.1);
    if train_tokens.len() < cfg.window + 1 {
        return Err(LlmError::BadConfig(format!(
            "corpus too small: {} tokens < window {}",
            train_tokens.len(),
            cfg.window
        )));
    }
    let mut model_cfg = cfg.model;
    model_cfg.vocab = corpus.vocab_size();
    if cfg.window > model_cfg.max_seq + 1 {
        return Err(LlmError::BadConfig(format!(
            "window {} exceeds max_seq {} + 1",
            cfg.window, model_cfg.max_seq
        )));
    }
    let mut model = Transformer::new(&model_cfg, cfg.seed)?;
    let mut opt = Adam::new(&mut model, cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);

    let mut initial_loss = 0.0f64;
    let mut final_loss = 0.0f64;
    for step in 0..cfg.steps {
        let mut grads = model.zero_grads();
        let mut loss_acc = 0.0f64;
        for _ in 0..cfg.batch {
            let start = rng.random_range(0..train_tokens.len() - cfg.window);
            let window = &train_tokens[start..start + cfg.window];
            loss_acc += model.train_step(window, &mut grads)?;
        }
        let mean_loss = loss_acc / cfg.batch as f64;
        opt.step(&mut model, &grads, cfg.batch as f32);
        if step == 0 {
            initial_loss = mean_loss;
        }
        final_loss = mean_loss;
    }
    Ok(Trained {
        model,
        initial_loss,
        final_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_on_learnable_corpus() {
        let corpus = Corpus::generate(11, 6_000);
        let cfg = TrainConfig {
            steps: 60,
            batch: 8,
            ..TrainConfig::default()
        };
        let t = train_language_model(&corpus, &cfg).unwrap();
        assert!(
            t.final_loss < t.initial_loss * 0.8,
            "initial {} final {}",
            t.initial_loss,
            t.final_loss
        );
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = Corpus::generate(11, 3_000);
        let cfg = TrainConfig {
            steps: 5,
            ..TrainConfig::default()
        };
        let a = train_language_model(&corpus, &cfg).unwrap();
        let b = train_language_model(&corpus, &cfg).unwrap();
        assert_eq!(a.final_loss, b.final_loss);
    }

    #[test]
    fn rejects_tiny_corpus() {
        let corpus = Corpus::generate(11, 10);
        let cfg = TrainConfig {
            window: 1000,
            ..TrainConfig::default()
        };
        assert!(train_language_model(&corpus, &cfg).is_err());
    }

    #[test]
    fn adam_moves_parameters() {
        let corpus = Corpus::generate(11, 2_000);
        let cfg = TrainConfig {
            steps: 1,
            ..TrainConfig::default()
        };
        let mut model_cfg = cfg.model;
        model_cfg.vocab = corpus.vocab_size();
        let before = Transformer::new(&model_cfg, cfg.seed).unwrap();
        let after = train_language_model(&corpus, &cfg).unwrap().model;
        assert_ne!(before.wout.data(), after.wout.data());
    }
}
