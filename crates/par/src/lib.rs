//! Host-thread fan-out utilities.
//!
//! A deployed SoftmAP accelerator runs many independent tiles in
//! parallel; on the host side, every layer of this workspace (the AP
//! simulator's batch driver, the scalar spec's batched entry points,
//! the LLM harness's attention rows) fans independent jobs across OS
//! threads the same way. This crate is that one shared primitive —
//! dependency-free so the scalar-specification crates do not have to
//! link the full simulator to use it.
//!
//! The scheduler is a work-stealing index counter over scoped threads
//! (`std::thread::scope`): no locks on the hot path, deterministic
//! input-ordered results, and panics in worker jobs propagate.
//!
//! Three families of entry points:
//!
//! * [`parallel_map`] / [`try_parallel_map`] — stateless jobs,
//! * [`parallel_map_with`] / [`try_parallel_map_with`] — jobs that
//!   share one per-worker state value (built once per thread by an
//!   `init` closure and handed to every job that thread claims). This
//!   is how the AP layers keep one persistent simulated tile per
//!   worker instead of allocating a tile per vector.
//! * [`fan_out_with`] — the phase fan-out primitive: one closure
//!   invocation per pre-built worker argument, with the workers
//!   expected to coordinate among themselves (barriers, shared
//!   atomics captured by the closure). This is how shard-parallel
//!   execution fans the phases of one long vector across workers
//!   over disjoint output slices while respecting the cross-tile
//!   sync points.
//!
//! The fallible variants cancel early: once any job fails, workers
//! stop claiming new indices. Because indices are claimed in order,
//! every index below a failing one has already been claimed and runs
//! to completion, so the error returned is still the lowest-indexed
//! failing item's.
//!
//! # Examples
//!
//! ```
//! let squares = softmap_par::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count used by
/// [`tile_parallelism`] (any positive integer; an invalid value falls
/// back to the host parallelism with a one-time stderr diagnostic).
/// Lets multi-core batch/shard scaling be exercised — or pinned down
/// for reproducibility — independently of what
/// `available_parallelism` reports for the host or container.
pub const THREADS_ENV: &str = "SOFTMAP_THREADS";

/// Number of worker threads used for `jobs` independent tasks: the
/// [`THREADS_ENV`] override if set (and a positive integer), otherwise
/// the machine's available parallelism — capped by the job count and
/// at least 1. A set-but-invalid override (not a positive integer)
/// falls back **loudly**: a one-time diagnostic on stderr names the
/// variable and the accepted values, so `SOFTMAP_THREADS=four` cannot
/// silently run at a different width than the experiment recorded.
#[must_use]
pub fn tile_parallelism(jobs: usize) -> usize {
    let host = || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let hw = match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                static WARN: std::sync::Once = std::sync::Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "softmap: invalid {THREADS_ENV}={raw:?}; accepted values \
                         are positive integers — using the host parallelism"
                    );
                });
                host()
            }
        },
        Err(_) => host(),
    };
    hw.min(jobs).max(1)
}

/// Applies `f` to every item on a pool of [`tile_parallelism`] scoped
/// threads, returning results in input order.
///
/// `f` runs concurrently on multiple threads. Panics in `f` propagate
/// to the caller.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), item| f(item))
}

/// [`parallel_map`] with one per-worker state value: each worker
/// thread calls `init` once and passes the state to every job it
/// claims. Results are in input order.
///
/// This is the pooled execution primitive: `init` builds an expensive
/// reusable resource (a simulated AP tile, a scratch arena) and the
/// jobs stream through it, so steady-state batches perform no
/// per-item setup.
///
/// Panics in `init` or `f` propagate to the caller.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = tile_parallelism(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&mut state, &items[i])));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    collected.sort_unstable_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Applies a fallible `f` to every item in parallel, returning the
/// results in input order or the error of the lowest-indexed failing
/// item.
///
/// Cancels early: after the first failure, workers stop claiming new
/// indices (already-claimed jobs run to completion, which is what
/// keeps the lowest-index guarantee exact).
///
/// # Errors
///
/// The first (by input order) error produced by `f`.
pub fn try_parallel_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    try_parallel_map_with(items, || (), |(), item| f(item))
}

/// [`try_parallel_map`] with one per-worker state value (see
/// [`parallel_map_with`]), with the same early-cancel behaviour.
///
/// # Errors
///
/// The first (by input order) error produced by `f`.
pub fn try_parallel_map_with<T, R, E, S, I, F>(items: &[T], init: I, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> Result<R, E> + Sync,
{
    let threads = tile_parallelism(items.len());
    if threads <= 1 {
        let mut state = init();
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(f(&mut state, item)?);
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    type WorkerOut<R, E> = (Vec<(usize, R)>, Option<(usize, E)>);
    let per_worker: Vec<WorkerOut<R, E>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    let mut first_err: Option<(usize, E)> = None;
                    while !cancelled.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match f(&mut state, &items[i]) {
                            Ok(r) => local.push((i, r)),
                            Err(e) => {
                                cancelled.store(true, Ordering::Relaxed);
                                first_err = Some((i, e));
                                break;
                            }
                        }
                    }
                    (local, first_err)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    let mut lowest: Option<(usize, E)> = None;
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(items.len());
    for (local, err) in per_worker {
        if let Some((i, e)) = err {
            if lowest.as_ref().is_none_or(|(j, _)| i < *j) {
                lowest = Some((i, e));
            }
        }
        collected.extend(local);
    }
    if let Some((_, e)) = lowest {
        return Err(e);
    }
    collected.sort_unstable_by_key(|&(i, _)| i);
    Ok(collected.into_iter().map(|(_, r)| r).collect())
}

/// Runs `f(index, arg)` once per argument, each on its own worker —
/// argument 0 on the calling thread, the rest on scoped threads. The
/// caller pre-builds one argument per worker (persistent state plus
/// any disjoint `&mut` output slices carved out of a shared buffer),
/// so unlike [`parallel_map_with`] there is no job queue: every worker
/// runs exactly once, and the workers synchronize among themselves
/// through whatever the closure captures (a [`std::sync::Barrier`]
/// for phase boundaries, atomics for cross-worker scalar exchange).
///
/// This is the phase fan-out primitive behind shard-parallel sharded
/// execution: the three phases of one long softmax vector run
/// lockstep across workers, meeting at the two cross-tile reduction
/// sync points. With zero or one argument no thread is spawned.
///
/// Panics in `f` propagate to the caller.
pub fn fan_out_with<A, F>(args: &mut [A], f: F)
where
    A: Send,
    F: Fn(usize, &mut A) + Sync,
{
    match args {
        [] => {}
        [only] => f(0, only),
        [first, rest @ ..] => std::thread::scope(|scope| {
            let f = &f;
            for (j, arg) in rest.iter_mut().enumerate() {
                scope.spawn(move || f(j + 1, arg));
            }
            f(0, first);
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        assert_eq!(parallel_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[9u64], |&x| x + 1), vec![10]);
    }

    #[test]
    fn try_parallel_map_reports_first_error() {
        let items: Vec<u64> = (0..64).collect();
        let r = try_parallel_map(&items, |&x| if x >= 10 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(10));
        let ok = try_parallel_map(&items, |&x| Ok::<_, ()>(x * 2));
        assert_eq!(ok.unwrap()[63], 126);
    }

    #[test]
    fn try_parallel_map_cancels_remaining_jobs() {
        // After the first failure, workers must stop claiming indices:
        // with an early error in a long batch, the executed-job count
        // stays far below the item count (exact on one core, bounded
        // by in-flight claims on many).
        let items: Vec<u64> = (0..10_000).collect();
        let ran = AtomicUsize::new(0);
        let r = try_parallel_map(&items, |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            if x == 3 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(r, Err(3));
        assert!(
            ran.load(Ordering::Relaxed) < items.len(),
            "failure must cancel the remaining jobs"
        );
    }

    #[test]
    fn try_parallel_map_sequential_path_stops_at_first_error() {
        // On a single worker the cancellation is exact: nothing after
        // the failing index runs.
        if tile_parallelism(8) != 1 {
            return; // multicore host: covered by the bounded test above
        }
        let items: Vec<u64> = (0..8).collect();
        let ran = AtomicUsize::new(0);
        let r = try_parallel_map(&items, |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            if x == 3 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(r, Err(3));
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn parallel_map_with_builds_one_state_per_worker() {
        let states = AtomicUsize::new(0);
        let items: Vec<u64> = (0..97).collect();
        let out = parallel_map_with(
            &items,
            || {
                states.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |acc, &x| {
                *acc += 1;
                x + *acc - *acc // result independent of state
            },
        );
        assert_eq!(out, items);
        let built = states.load(Ordering::Relaxed);
        // Bounded by the worker count at spawn time; use the item count
        // as the env-independent ceiling so this cannot race with
        // `threads_env_overrides_parallelism` mutating SOFTMAP_THREADS.
        assert!(built >= 1 && built <= items.len());
    }

    #[test]
    fn try_parallel_map_with_threads_state_through_jobs() {
        // Each worker's state counts its own jobs; the sum of all
        // per-worker counts must equal the item count.
        let total = AtomicUsize::new(0);
        let items: Vec<u64> = (0..33).collect();
        struct Count<'a>(usize, &'a AtomicUsize);
        impl Drop for Count<'_> {
            fn drop(&mut self) {
                self.1.fetch_add(self.0, Ordering::Relaxed);
            }
        }
        let ok: Result<Vec<u64>, ()> = try_parallel_map_with(
            &items,
            || Count(0, &total),
            |c, &x| {
                c.0 += 1;
                Ok(x)
            },
        );
        assert_eq!(ok.unwrap(), items);
        assert_eq!(total.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn fan_out_runs_every_worker_once_over_disjoint_slices() {
        // The shard-parallel shape: a shared output buffer carved into
        // disjoint ragged slices, one per worker, written in parallel.
        let mut out = vec![0u64; 10];
        let (a, rest) = out.split_at_mut(3);
        let (b, c) = rest.split_at_mut(4);
        let mut args: Vec<(u64, &mut [u64])> = vec![(1, a), (2, b), (3, c)];
        fan_out_with(&mut args, |j, (tag, slice)| {
            assert_eq!(j + 1, *tag as usize);
            for s in slice.iter_mut() {
                *s = *tag;
            }
        });
        drop(args);
        assert_eq!(out, [1, 1, 1, 2, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn fan_out_synchronizes_phases_through_a_barrier() {
        // Workers meet at a barrier between two phases; every phase-2
        // read must observe every phase-1 write (the cross-tile sync
        // point contract).
        let n = 4;
        let barrier = std::sync::Barrier::new(n);
        let deposits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let mut sums = vec![0usize; n];
        let mut args: Vec<&mut usize> = sums.iter_mut().collect();
        fan_out_with(&mut args, |j, sum| {
            deposits[j].store(j + 1, Ordering::Relaxed);
            barrier.wait();
            **sum = deposits.iter().map(|d| d.load(Ordering::Relaxed)).sum();
        });
        drop(args);
        assert_eq!(sums, vec![10; n]);
    }

    #[test]
    fn fan_out_handles_empty_and_single() {
        fan_out_with::<u32, _>(&mut [], |_, _| unreachable!());
        let mut one = [7u32];
        fan_out_with(&mut one, |j, v| {
            assert_eq!(j, 0);
            *v += 1;
        });
        assert_eq!(one, [8]);
    }

    #[test]
    fn tile_parallelism_bounds() {
        assert_eq!(tile_parallelism(0), 1);
        assert_eq!(tile_parallelism(1), 1);
        assert!(tile_parallelism(1 << 20) >= 1);
    }

    #[test]
    fn threads_env_overrides_parallelism() {
        // The override lets shard/batch fan-out be exercised beyond (or
        // pinned below) the container's core count. Only values larger
        // than the real parallelism are set here so concurrently
        // running tests can never observe a *smaller* bound than they
        // computed.
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let forced = hw + 3;
        std::env::set_var(THREADS_ENV, forced.to_string());
        assert_eq!(tile_parallelism(1 << 20), forced);
        assert_eq!(tile_parallelism(2), 2, "job count still caps");
        // The fan-out really builds that many worker states.
        let states = AtomicUsize::new(0);
        let items: Vec<u64> = (0..(forced as u64 * 4)).collect();
        let out = parallel_map_with(
            &items,
            || {
                states.fetch_add(1, Ordering::Relaxed);
            },
            |(), &x| x,
        );
        assert_eq!(out, items);
        assert_eq!(states.load(Ordering::Relaxed), forced);
        // Garbage and non-positive values fall back to the hardware.
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(tile_parallelism(1 << 20), hw);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(tile_parallelism(1 << 20), hw);
        std::env::remove_var(THREADS_ENV);
        assert_eq!(tile_parallelism(1 << 20), hw);
    }
}
