//! Host-thread fan-out utilities.
//!
//! A deployed SoftmAP accelerator runs many independent tiles in
//! parallel; on the host side, every layer of this workspace (the AP
//! simulator's batch driver, the scalar spec's batched entry points,
//! the LLM harness's attention rows) fans independent jobs across OS
//! threads the same way. This crate is that one shared primitive —
//! dependency-free so the scalar-specification crates do not have to
//! link the full simulator to use it.
//!
//! The scheduler is a work-stealing index counter over scoped threads
//! (`std::thread::scope`): no locks on the hot path, deterministic
//! input-ordered results, and panics in worker jobs propagate.
//!
//! # Examples
//!
//! ```
//! let squares = softmap_par::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used for `jobs` independent tasks: the
/// machine's available parallelism, capped by the job count (and at
/// least 1).
#[must_use]
pub fn tile_parallelism(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    hw.min(jobs).max(1)
}

/// Applies `f` to every item on a pool of [`tile_parallelism`] scoped
/// threads, returning results in input order.
///
/// `f` runs concurrently on multiple threads. Panics in `f` propagate
/// to the caller.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = tile_parallelism(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    collected.sort_unstable_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Applies a fallible `f` to every item in parallel, returning the
/// results in input order or the error of the lowest-indexed failing
/// item.
///
/// # Errors
///
/// The first (by input order) error produced by `f`.
pub fn try_parallel_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let results = parallel_map(items, f);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        assert_eq!(parallel_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[9u64], |&x| x + 1), vec![10]);
    }

    #[test]
    fn try_parallel_map_reports_first_error() {
        let items: Vec<u64> = (0..64).collect();
        let r = try_parallel_map(&items, |&x| if x >= 10 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(10));
        let ok = try_parallel_map(&items, |&x| Ok::<_, ()>(x * 2));
        assert_eq!(ok.unwrap()[63], 126);
    }

    #[test]
    fn tile_parallelism_bounds() {
        assert_eq!(tile_parallelism(0), 1);
        assert_eq!(tile_parallelism(1), 1);
        assert!(tile_parallelism(1 << 20) >= 1);
    }
}
