use crate::width;

/// An integer storage format: a bit width plus signedness.
///
/// Widths follow the paper's Table I convention: `bits` counts magnitude
/// bits, so a signed format of width `w` holds values in
/// `[-(2^w - 1), 2^w - 1]` and an unsigned one `[0, 2^w - 1]`.
///
/// # Examples
///
/// ```
/// use softmap_quant::IntFormat;
///
/// let f = IntFormat::signed(8);
/// assert_eq!(f.min(), -255);
/// assert_eq!(f.max(), 255);
/// assert!(f.contains(-200));
/// assert_eq!(f.saturate(999), 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntFormat {
    bits: u32,
    signed: bool,
}

impl IntFormat {
    /// Creates a signed format with `bits` magnitude bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 62`.
    #[must_use]
    pub fn signed(bits: u32) -> Self {
        assert!(bits <= 62, "width {bits} out of range");
        Self { bits, signed: true }
    }

    /// Creates an unsigned format with `bits` magnitude bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 62`.
    #[must_use]
    pub fn unsigned(bits: u32) -> Self {
        assert!(bits <= 62, "width {bits} out of range");
        Self {
            bits,
            signed: false,
        }
    }

    /// The magnitude bit width.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Whether negative values are representable.
    #[must_use]
    pub fn is_signed(self) -> bool {
        self.signed
    }

    /// Smallest representable value.
    #[must_use]
    pub fn min(self) -> i64 {
        if self.signed {
            -width::max_magnitude(self.bits)
        } else {
            0
        }
    }

    /// Largest representable value.
    #[must_use]
    pub fn max(self) -> i64 {
        width::max_magnitude(self.bits)
    }

    /// Whether `x` is representable in this format.
    #[must_use]
    pub fn contains(self, x: i64) -> bool {
        x >= self.min() && x <= self.max()
    }

    /// Clamps `x` into this format's range (hardware saturation).
    #[must_use]
    pub fn saturate(self, x: i64) -> i64 {
        x.clamp(self.min(), self.max())
    }

    /// Wraps `x` into this format's range by truncating high bits; for
    /// unsigned formats negative inputs wrap on their magnitude and are
    /// stored as non-negative.
    #[must_use]
    pub fn wrap(self, x: i64) -> i64 {
        if self.signed {
            width::wrap_magnitude(x, self.bits)
        } else {
            (x.rem_euclid(1i64 << self.bits)) & width::mask(self.bits) as i64
        }
    }

    /// Number of distinct representable values.
    #[must_use]
    pub fn cardinality(self) -> u64 {
        (self.max() - self.min()) as u64 + 1
    }
}

impl core::fmt::Display for IntFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}{}", if self.signed { "s" } else { "u" }, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_range() {
        let f = IntFormat::signed(4);
        assert_eq!(f.min(), -15);
        assert_eq!(f.max(), 15);
        assert_eq!(f.cardinality(), 31);
        assert_eq!(f.to_string(), "s4");
    }

    #[test]
    fn unsigned_range() {
        let f = IntFormat::unsigned(4);
        assert_eq!(f.min(), 0);
        assert_eq!(f.max(), 15);
        assert_eq!(f.cardinality(), 16);
        assert_eq!(f.to_string(), "u4");
    }

    #[test]
    fn saturate_and_contains_agree() {
        let f = IntFormat::signed(6);
        for x in -200i64..200 {
            assert_eq!(f.contains(x), f.saturate(x) == x);
        }
    }

    #[test]
    fn wrap_unsigned_is_modular() {
        let f = IntFormat::unsigned(8);
        assert_eq!(f.wrap(256), 0);
        assert_eq!(f.wrap(257), 1);
        assert_eq!(f.wrap(-1), 255);
    }

    #[test]
    fn zero_width_format() {
        let f = IntFormat::unsigned(0);
        assert_eq!(f.min(), 0);
        assert_eq!(f.max(), 0);
        assert_eq!(f.saturate(5), 0);
    }
}
