//! Fixed-point and quantization substrate for the SoftmAP reproduction.
//!
//! The SoftmAP paper (DATE 2025) quantizes softmax inputs to `M`-bit
//! integers with a clipping threshold `TC` and tracks the exact bit width
//! of every intermediate of its integer-only softmax (Table I). This
//! crate provides the primitives the rest of the workspace builds on:
//!
//! * [`width`] — bit-width bookkeeping (how many magnitude bits a value
//!   needs, masks, wrapping and saturating narrowing),
//! * [`IntFormat`] — a (bits, signedness) pair with range queries,
//! * [`LinearQuantizer`] — uniform scale quantization with clipping,
//!   including the paper's non-positive `[TC, 0]` input scheme,
//! * [`RangeStats`] — range calibration over sample data.
//!
//! # Examples
//!
//! Quantize softmax inputs exactly the way the paper does (clip to
//! `[TC, 0]`, `M`-bit magnitude):
//!
//! ```
//! use softmap_quant::LinearQuantizer;
//!
//! let q = LinearQuantizer::nonpositive_clip(-7.0, 8);
//! let code = q.quantize(-1.5);
//! assert!(code <= 0 && code >= -255);
//! let back = q.dequantize(code);
//! assert!((back - -1.5).abs() < q.scale());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod width;

mod format;
mod quantizer;
mod stats;

pub use format::IntFormat;
pub use quantizer::LinearQuantizer;
pub use stats::RangeStats;

/// Error type for quantization configuration problems.
///
/// # Examples
///
/// ```
/// use softmap_quant::{LinearQuantizer, QuantConfigError};
///
/// let err = LinearQuantizer::try_nonpositive_clip(0.0, 8).unwrap_err();
/// assert!(matches!(err, QuantConfigError::NonNegativeThreshold(_)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QuantConfigError {
    /// The clipping threshold must be strictly negative.
    NonNegativeThreshold(f64),
    /// Bit width must be in `1..=32`.
    BadBits(u32),
    /// The scale must be finite and strictly positive.
    BadScale(f64),
}

impl core::fmt::Display for QuantConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NonNegativeThreshold(tc) => {
                write!(f, "clipping threshold must be negative, got {tc}")
            }
            Self::BadBits(b) => write!(f, "bit width must be in 1..=32, got {b}"),
            Self::BadScale(s) => write!(f, "scale must be finite and positive, got {s}"),
        }
    }
}

impl std::error::Error for QuantConfigError {}
