use crate::{width, IntFormat, QuantConfigError};

/// Uniform (linear) quantizer `code = round(x / scale)` with clipping.
///
/// SoftmAP quantizes softmax inputs after max-subtraction: values lie in
/// `(-inf, 0]`, are clipped to `[TC, 0]`, and mapped to non-positive
/// `M`-bit integer codes with scale `S = -TC / (2^M - 1)`. The same type
/// also supports general symmetric quantization for other tensors.
///
/// # Examples
///
/// ```
/// use softmap_quant::LinearQuantizer;
///
/// let q = LinearQuantizer::nonpositive_clip(-7.0, 6);
/// assert_eq!(q.quantize(0.0), 0);
/// assert_eq!(q.quantize(-7.0), -(q.format().max()));
/// assert_eq!(q.quantize(-100.0), q.format().min()); // clipped
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearQuantizer {
    scale: f64,
    format: IntFormat,
}

impl LinearQuantizer {
    /// Creates a quantizer with an explicit scale and storage format.
    ///
    /// # Errors
    ///
    /// Returns [`QuantConfigError::BadScale`] if `scale` is not finite
    /// and positive.
    pub fn with_scale(scale: f64, format: IntFormat) -> Result<Self, QuantConfigError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(QuantConfigError::BadScale(scale));
        }
        Ok(Self { scale, format })
    }

    /// The paper's softmax-input scheme: clip to `[tc, 0]` and quantize
    /// to non-positive `m`-bit codes. Scale is `-tc / (2^m - 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the arguments are invalid; use
    /// [`LinearQuantizer::try_nonpositive_clip`] for a fallible variant.
    #[must_use]
    pub fn nonpositive_clip(tc: f64, m: u32) -> Self {
        Self::try_nonpositive_clip(tc, m).expect("invalid clip quantizer parameters")
    }

    /// Fallible variant of [`LinearQuantizer::nonpositive_clip`].
    ///
    /// # Errors
    ///
    /// Returns an error if `tc >= 0`, `tc` is not finite, or `m` is not
    /// in `1..=32`.
    pub fn try_nonpositive_clip(tc: f64, m: u32) -> Result<Self, QuantConfigError> {
        if !tc.is_finite() || tc >= 0.0 {
            return Err(QuantConfigError::NonNegativeThreshold(tc));
        }
        if m == 0 || m > 32 {
            return Err(QuantConfigError::BadBits(m));
        }
        let scale = -tc / width::max_magnitude(m) as f64;
        Ok(Self {
            scale,
            format: IntFormat::signed(m),
        })
    }

    /// Symmetric quantizer covering `[-amax, amax]` with `m` magnitude
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns an error if `amax` is not finite and positive or `m` is
    /// not in `1..=32`.
    pub fn symmetric(amax: f64, m: u32) -> Result<Self, QuantConfigError> {
        if !(amax.is_finite() && amax > 0.0) {
            return Err(QuantConfigError::BadScale(amax));
        }
        if m == 0 || m > 32 {
            return Err(QuantConfigError::BadBits(m));
        }
        let scale = amax / width::max_magnitude(m) as f64;
        Ok(Self {
            scale,
            format: IntFormat::signed(m),
        })
    }

    /// The quantization step size `S`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The integer storage format of the codes.
    #[must_use]
    pub fn format(&self) -> IntFormat {
        self.format
    }

    /// Quantizes one value: round-to-nearest then clip into the format.
    #[must_use]
    pub fn quantize(&self, x: f64) -> i64 {
        let code = (x / self.scale).round();
        // Clamp in the float domain first so huge inputs cannot overflow
        // the i64 cast.
        let code = code.clamp(self.format.min() as f64, self.format.max() as f64);
        code as i64
    }

    /// Dequantizes one code back to the real domain.
    #[must_use]
    pub fn dequantize(&self, code: i64) -> f64 {
        code as f64 * self.scale
    }

    /// Quantizes a slice.
    #[must_use]
    pub fn quantize_all(&self, xs: &[f64]) -> Vec<i64> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Dequantizes a slice.
    #[must_use]
    pub fn dequantize_all(&self, codes: &[i64]) -> Vec<f64> {
        codes.iter().map(|&c| self.dequantize(c)).collect()
    }

    /// Worst-case absolute quantization error for in-range inputs
    /// (half a step).
    #[must_use]
    pub fn max_error(&self) -> f64 {
        self.scale / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scheme_endpoints() {
        let q = LinearQuantizer::nonpositive_clip(-7.0, 8);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(-7.0), -255);
        // Below the clip threshold everything maps to the most negative code.
        assert_eq!(q.quantize(-7.0001), -255);
        assert_eq!(q.quantize(-1e9), -255);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let q = LinearQuantizer::nonpositive_clip(-7.0, 6);
        let mut x = -7.0;
        while x <= 0.0 {
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.max_error() + 1e-12, "x={x} err={err}");
            x += 0.01;
        }
    }

    #[test]
    fn symmetric_covers_both_signs() {
        let q = LinearQuantizer::symmetric(4.0, 4).unwrap();
        assert_eq!(q.quantize(4.0), 15);
        assert_eq!(q.quantize(-4.0), -15);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LinearQuantizer::try_nonpositive_clip(0.0, 8).is_err());
        assert!(LinearQuantizer::try_nonpositive_clip(f64::NAN, 8).is_err());
        assert!(LinearQuantizer::try_nonpositive_clip(-7.0, 0).is_err());
        assert!(LinearQuantizer::try_nonpositive_clip(-7.0, 33).is_err());
        assert!(LinearQuantizer::symmetric(-1.0, 8).is_err());
        assert!(LinearQuantizer::with_scale(0.0, IntFormat::signed(8)).is_err());
    }

    #[test]
    fn quantize_is_monotone() {
        let q = LinearQuantizer::nonpositive_clip(-7.0, 6);
        let mut prev = q.quantize(-8.0);
        let mut x = -8.0;
        while x <= 0.5 {
            let c = q.quantize(x);
            assert!(c >= prev, "monotonicity violated at {x}");
            prev = c;
            x += 0.003;
        }
    }

    #[test]
    fn huge_inputs_do_not_overflow() {
        let q = LinearQuantizer::symmetric(1.0, 16).unwrap();
        assert_eq!(q.quantize(f64::MAX), q.format().max());
        assert_eq!(q.quantize(f64::MIN), q.format().min());
    }
}
