/// Running range statistics used to calibrate clipping thresholds.
///
/// The paper selects `TC` by analysing the softmax-input range on a
/// calibration set (WikiText-2); this type is the corresponding
/// calibration primitive.
///
/// # Examples
///
/// ```
/// use softmap_quant::RangeStats;
///
/// let mut s = RangeStats::new();
/// s.extend([-3.0, -1.0, 0.0].iter().copied());
/// assert_eq!(s.min(), Some(-3.0));
/// assert_eq!(s.max(), Some(0.0));
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RangeStats {
    min: f64,
    max: f64,
    sum: f64,
    sum_sq: f64,
    count: u64,
}

impl RangeStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
            count: 0,
        }
    }

    /// Observes one sample. Non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        self.sum_sq += x * x;
        self.count += 1;
    }

    /// Observes many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }

    /// Smallest observed sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of (finite) samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observed samples, if any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population standard deviation of observed samples, if any.
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        self.mean().map(|m| {
            let var = (self.sum_sq / self.count as f64 - m * m).max(0.0);
            var.sqrt()
        })
    }

    /// Suggests a clipping threshold `TC` (negative) that covers
    /// `coverage` of the observed dynamic range below zero, mirroring the
    /// paper's manual selection of `TC = -7` for `M ∈ {6, 8}`.
    ///
    /// Returns `None` when no samples were observed or the minimum is
    /// non-negative.
    #[must_use]
    pub fn suggest_tc(&self, coverage: f64) -> Option<f64> {
        let min = self.min()?;
        (min < 0.0).then(|| min * coverage.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_no_values() {
        let s = RangeStats::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = RangeStats::new();
        s.extend([f64::NAN, f64::INFINITY, -1.0, f64::NEG_INFINITY]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), Some(-1.0));
    }

    #[test]
    fn mean_and_std() {
        let mut s = RangeStats::new();
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), Some(2.5));
        let sd = s.std_dev().unwrap();
        assert!((sd - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn suggest_tc_scales_min() {
        let mut s = RangeStats::new();
        s.extend([-10.0, -2.0, 0.0]);
        assert_eq!(s.suggest_tc(0.7), Some(-7.0));
        assert_eq!(s.suggest_tc(2.0), Some(-10.0)); // clamped coverage
    }

    #[test]
    fn suggest_tc_none_for_nonnegative_data() {
        let mut s = RangeStats::new();
        s.extend([0.0, 1.0]);
        assert_eq!(s.suggest_tc(0.9), None);
    }
}
