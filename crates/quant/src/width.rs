//! Bit-width bookkeeping helpers.
//!
//! Width conventions follow Table I of the paper: a width of `w` bits
//! means the *magnitude* of the value fits in `w` bits, i.e.
//! `|x| < 2^w`. Sign is tracked separately (most SoftmAP intermediates
//! are known non-positive or non-negative by construction).
//!
//! # Examples
//!
//! ```
//! use softmap_quant::width;
//!
//! assert_eq!(width::bits_for_magnitude(255), 8);
//! assert_eq!(width::mask(8), 0xFF);
//! assert_eq!(width::saturate_magnitude(300, 8), 255);
//! assert_eq!(width::saturate_magnitude(-300, 8), -255);
//! ```

/// Returns the number of bits needed to hold the magnitude of `x`
/// (`bits_for_magnitude(0) == 0`).
///
/// # Examples
///
/// ```
/// use softmap_quant::width::bits_for_magnitude;
/// assert_eq!(bits_for_magnitude(0), 0);
/// assert_eq!(bits_for_magnitude(1), 1);
/// assert_eq!(bits_for_magnitude(-255), 8);
/// assert_eq!(bits_for_magnitude(256), 9);
/// ```
#[must_use]
pub fn bits_for_magnitude(x: i64) -> u32 {
    let m = x.unsigned_abs();
    64 - m.leading_zeros()
}

/// Returns a mask with the low `bits` bits set.
///
/// # Panics
///
/// Panics if `bits > 63`.
///
/// # Examples
///
/// ```
/// use softmap_quant::width::mask;
/// assert_eq!(mask(0), 0);
/// assert_eq!(mask(4), 0xF);
/// ```
#[must_use]
pub fn mask(bits: u32) -> u64 {
    assert!(bits <= 63, "mask width {bits} out of range");
    (1u64 << bits) - 1
}

/// Largest magnitude representable in `bits` bits (`2^bits - 1`).
///
/// # Panics
///
/// Panics if `bits > 63`.
///
/// # Examples
///
/// ```
/// use softmap_quant::width::max_magnitude;
/// assert_eq!(max_magnitude(8), 255);
/// ```
#[must_use]
pub fn max_magnitude(bits: u32) -> i64 {
    assert!(bits <= 63, "width {bits} out of range");
    ((1u64 << bits) - 1) as i64
}

/// Returns whether the magnitude of `x` fits in `bits` bits.
///
/// # Examples
///
/// ```
/// use softmap_quant::width::fits;
/// assert!(fits(-255, 8));
/// assert!(!fits(256, 8));
/// assert!(fits(0, 0));
/// ```
#[must_use]
pub fn fits(x: i64, bits: u32) -> bool {
    bits_for_magnitude(x) <= bits
}

/// Clamps `x` so its magnitude fits in `bits` bits, preserving sign.
///
/// This models a hardware register of `bits` magnitude bits with
/// saturation on overflow.
///
/// # Examples
///
/// ```
/// use softmap_quant::width::saturate_magnitude;
/// assert_eq!(saturate_magnitude(1000, 8), 255);
/// assert_eq!(saturate_magnitude(-1000, 8), -255);
/// assert_eq!(saturate_magnitude(42, 8), 42);
/// ```
#[must_use]
pub fn saturate_magnitude(x: i64, bits: u32) -> i64 {
    let m = max_magnitude(bits);
    x.clamp(-m, m)
}

/// Truncates `x` to the low `bits` bits, discarding higher bits
/// (two's-complement wrap of the magnitude), preserving sign.
///
/// This models a hardware register that silently wraps on overflow and
/// is used by the failure-injection sum mode.
///
/// # Examples
///
/// ```
/// use softmap_quant::width::wrap_magnitude;
/// assert_eq!(wrap_magnitude(256, 8), 0);
/// assert_eq!(wrap_magnitude(257, 8), 1);
/// assert_eq!(wrap_magnitude(-257, 8), -1);
/// ```
#[must_use]
pub fn wrap_magnitude(x: i64, bits: u32) -> i64 {
    let m = (x.unsigned_abs() & mask(bits)) as i64;
    if x < 0 {
        -m
    } else {
        m
    }
}

/// Floor division that rounds toward negative infinity (like Python's
/// `//`), which is the semantics of `⌊·⌋` in Algorithm 1 of the paper.
///
/// # Panics
///
/// Panics if `d == 0`.
///
/// # Examples
///
/// ```
/// use softmap_quant::width::floor_div;
/// assert_eq!(floor_div(7, 2), 3);
/// assert_eq!(floor_div(-7, 2), -4);
/// assert_eq!(floor_div(-8, 2), -4);
/// ```
#[must_use]
pub fn floor_div(n: i64, d: i64) -> i64 {
    assert!(d != 0, "division by zero");
    // `div_euclid` floors for positive divisors but rounds toward +inf for
    // negative ones (remainder is always non-negative); correct the latter.
    n.div_euclid(d) - if d < 0 && n.rem_euclid(d) != 0 { 1 } else { 0 }
}

/// Arithmetic right shift with floor semantics (`x >> s` rounding toward
/// negative infinity), matching the paper's `>>` on signed values.
///
/// # Examples
///
/// ```
/// use softmap_quant::width::floor_shr;
/// assert_eq!(floor_shr(7, 1), 3);
/// assert_eq!(floor_shr(-7, 1), -4);
/// ```
#[must_use]
pub fn floor_shr(x: i64, s: u32) -> i64 {
    if s >= 63 {
        if x < 0 {
            -1
        } else {
            0
        }
    } else {
        x >> s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_magnitude_boundaries() {
        assert_eq!(bits_for_magnitude(0), 0);
        assert_eq!(bits_for_magnitude(1), 1);
        assert_eq!(bits_for_magnitude(2), 2);
        assert_eq!(bits_for_magnitude(3), 2);
        assert_eq!(bits_for_magnitude(4), 3);
        assert_eq!(bits_for_magnitude(i64::MAX), 63);
        assert_eq!(bits_for_magnitude(-1), 1);
        assert_eq!(bits_for_magnitude(i64::MIN + 1), 63);
    }

    #[test]
    fn mask_values() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(16), 0xFFFF);
        assert_eq!(mask(63), u64::MAX >> 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_too_wide_panics() {
        let _ = mask(64);
    }

    #[test]
    fn saturate_within_range_is_identity() {
        for x in -255..=255 {
            assert_eq!(saturate_magnitude(x, 8), x);
        }
    }

    #[test]
    fn saturate_clamps_both_signs() {
        assert_eq!(saturate_magnitude(i64::MAX, 8), 255);
        assert_eq!(saturate_magnitude(i64::MIN + 1, 8), -255);
    }

    #[test]
    fn wrap_magnitude_examples() {
        assert_eq!(wrap_magnitude(255, 8), 255);
        assert_eq!(wrap_magnitude(256, 8), 0);
        assert_eq!(wrap_magnitude(511, 8), 255);
        assert_eq!(wrap_magnitude(-511, 8), -255);
        assert_eq!(wrap_magnitude(0, 0), 0);
    }

    #[test]
    fn floor_div_matches_mathematical_floor() {
        for n in -50i64..=50 {
            for d in [-7i64, -3, -1, 1, 2, 5, 9] {
                let expect = ((n as f64) / (d as f64)).floor() as i64;
                assert_eq!(floor_div(n, d), expect, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn floor_shr_matches_floor_div_by_power_of_two() {
        for x in -1000i64..=1000 {
            for s in 0..8u32 {
                assert_eq!(floor_shr(x, s), floor_div(x, 1 << s), "x={x} s={s}");
            }
        }
        assert_eq!(floor_shr(-1, 63), -1);
        assert_eq!(floor_shr(-1, 100), -1);
        assert_eq!(floor_shr(1, 100), 0);
    }

    #[test]
    fn fits_is_consistent_with_saturate() {
        for x in [-300i64, -256, -255, -1, 0, 1, 255, 256, 300] {
            assert_eq!(fits(x, 8), saturate_magnitude(x, 8) == x);
        }
    }
}
