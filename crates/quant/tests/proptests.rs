//! Property-based tests for the quantization substrate.

use proptest::prelude::*;
use softmap_quant::{width, IntFormat, LinearQuantizer};

proptest! {
    #[test]
    fn bits_for_magnitude_is_minimal(x in -(1i64 << 40)..(1i64 << 40)) {
        let b = width::bits_for_magnitude(x);
        prop_assert!(width::fits(x, b));
        if b > 0 {
            prop_assert!(!width::fits(x, b - 1));
        }
    }

    #[test]
    fn saturate_is_idempotent(x in any::<i64>(), bits in 0u32..=62) {
        let once = width::saturate_magnitude(x, bits.min(62));
        let twice = width::saturate_magnitude(once, bits.min(62));
        prop_assert_eq!(once, twice);
        prop_assert!(width::fits(once, bits.min(62)));
    }

    #[test]
    fn wrap_fits_in_width(x in any::<i64>(), bits in 0u32..=62) {
        let w = width::wrap_magnitude(x, bits);
        prop_assert!(width::fits(w, bits));
    }

    #[test]
    fn floor_div_identity(n in -100_000i64..100_000, d in 1i64..1000) {
        let q = width::floor_div(n, d);
        // q is the largest integer with q*d <= n.
        prop_assert!(q * d <= n);
        prop_assert!((q + 1) * d > n);
    }

    #[test]
    fn quantizer_round_trip_error(tc in -32.0f64..-0.5, m in 2u32..=16,
                                  frac in 0.0f64..=1.0) {
        let q = LinearQuantizer::nonpositive_clip(tc, m);
        let x = tc * frac;
        let err = (q.dequantize(q.quantize(x)) - x).abs();
        prop_assert!(err <= q.max_error() * (1.0 + 1e-9));
    }

    #[test]
    fn quantizer_codes_in_format(tc in -32.0f64..-0.5, m in 2u32..=16,
                                 x in -1000.0f64..1000.0) {
        let q = LinearQuantizer::nonpositive_clip(tc, m);
        let c = q.quantize(x);
        prop_assert!(q.format().contains(c));
    }

    #[test]
    fn format_saturate_wrap_agree_in_range(bits in 1u32..=32, x in any::<i32>()) {
        let f = IntFormat::signed(bits);
        let x = i64::from(x);
        if f.contains(x) {
            prop_assert_eq!(f.saturate(x), x);
            prop_assert_eq!(f.wrap(x), x);
        }
    }
}
