/// How the sum of exponentials behaves when it overflows its `N`-extra-bit
/// register (the paper's sum-truncation study, Tables III/IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SumMode {
    /// Clamp at the register maximum — the hardware default assumed by
    /// this reproduction (produces the paper's moderate perplexity loss
    /// at small `N` rather than a catastrophic one).
    #[default]
    Saturate,
    /// Drop high bits (failure-injection mode).
    Wrap,
    /// Mathematically exact sum (equivalent to
    /// `N = log2(SequenceLength/2)` or larger, per the paper).
    Exact,
}

/// One point of the paper's precision grid (Table I):
/// input precision `M`, `v_corr` headroom `Δ` (the paper's
/// `v_corr ∈ {M, M+1, M+2}`), sum headroom `N`, and clipping threshold
/// `TC`.
///
/// # Examples
///
/// ```
/// use softmap_softmax::PrecisionConfig;
///
/// let best = PrecisionConfig::paper_best();
/// assert_eq!((best.m, best.vcorr_delta, best.n_sum_bits), (6, 0, 16));
/// assert_eq!(best.tc, -7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionConfig {
    /// Input (and `v_stable`) precision in bits: the paper evaluates
    /// `M ∈ {4, 6, 8}`.
    pub m: u32,
    /// Extra bits allocated to `v_corr` beyond `M` (0, 1, or 2).
    pub vcorr_delta: u32,
    /// Extra bits for the sum register beyond the `v_approx` width
    /// (the paper evaluates `N ∈ {8, 12, 16, 20}`).
    pub n_sum_bits: u32,
    /// Clipping threshold for softmax inputs after max subtraction
    /// (`TC = -7` for `M ∈ {6,8}`, `TC = -4` for `M = 4`).
    pub tc: f64,
    /// Sum overflow behaviour.
    pub sum_mode: SumMode,
}

impl PrecisionConfig {
    /// Creates a config with the paper's clipping convention for `m`
    /// (`TC = -4` when `m == 4`, else `TC = -7`) and saturating sum.
    #[must_use]
    pub fn new(m: u32, vcorr_delta: u32, n_sum_bits: u32) -> Self {
        Self {
            m,
            vcorr_delta,
            n_sum_bits,
            tc: if m == 4 { -4.0 } else { -7.0 },
            sum_mode: SumMode::Saturate,
        }
    }

    /// The paper's selected "best precision combination":
    /// `v_corr = M`, `M = 6`, `N = 16`.
    #[must_use]
    pub fn paper_best() -> Self {
        Self::new(6, 0, 16)
    }

    /// Returns a copy with a different clipping threshold.
    #[must_use]
    pub fn with_tc(mut self, tc: f64) -> Self {
        self.tc = tc;
        self
    }

    /// Returns a copy with a different sum overflow behaviour.
    #[must_use]
    pub fn with_sum_mode(mut self, sum_mode: SumMode) -> Self {
        self.sum_mode = sum_mode;
        self
    }

    /// The quantization step `S = -TC / 2^(M-1)` of the paper's signed
    /// `M`-bit input scheme.
    ///
    /// The exponent `M-1` (rather than `M`) is forced by Table I's
    /// 4-bit allocation for `v_ln2`: only with signed `M`-bit codes
    /// (magnitude up to `2^(M-1)`) does `⌊ln2/S⌋` fit 4 bits for every
    /// `M ∈ {4, 6, 8}` at the paper's clipping thresholds.
    #[must_use]
    pub fn scale(&self) -> f64 {
        -self.tc / (1u64 << (self.m - 1)) as f64
    }

    /// Largest input-code magnitude (`2^(M-1)`).
    #[must_use]
    pub fn max_code_magnitude(&self) -> i64 {
        1i64 << (self.m - 1)
    }

    /// Width of the `v_corr` intermediate: `M + Δ`.
    #[must_use]
    pub fn vcorr_bits(&self) -> u32 {
        self.m + self.vcorr_delta
    }

    /// Short label used by tables: e.g. `M=6/vcorr=M/N=16`.
    #[must_use]
    pub fn label(&self) -> String {
        let vc = match self.vcorr_delta {
            0 => "M".to_string(),
            d => format!("M+{d}"),
        };
        format!("M={}/vcorr={}/N={}", self.m, vc, self.n_sum_bits)
    }
}

impl Default for PrecisionConfig {
    fn default() -> Self {
        Self::paper_best()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tc_convention() {
        assert_eq!(PrecisionConfig::new(4, 0, 16).tc, -4.0);
        assert_eq!(PrecisionConfig::new(6, 0, 16).tc, -7.0);
        assert_eq!(PrecisionConfig::new(8, 0, 16).tc, -7.0);
    }

    #[test]
    fn scale_covers_clip_range() {
        let cfg = PrecisionConfig::new(8, 0, 16);
        let s = cfg.scale();
        assert!((s * 128.0 - 7.0).abs() < 1e-12);
        assert_eq!(cfg.max_code_magnitude(), 128);
    }

    #[test]
    fn builders_update_fields() {
        let cfg = PrecisionConfig::paper_best()
            .with_tc(-5.0)
            .with_sum_mode(SumMode::Wrap);
        assert_eq!(cfg.tc, -5.0);
        assert_eq!(cfg.sum_mode, SumMode::Wrap);
        assert_eq!(cfg.vcorr_bits(), 6);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PrecisionConfig::new(6, 0, 16).label(), "M=6/vcorr=M/N=16");
        assert_eq!(PrecisionConfig::new(8, 2, 12).label(), "M=8/vcorr=M+2/N=12");
    }
}
