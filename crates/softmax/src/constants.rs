use crate::{PrecisionConfig, SoftmaxError, WidthTable};

/// I-BERT polynomial coefficients for `exp(p) ≈ a(p + b)² + c` on
/// `p ∈ [-ln 2, 0]` (Algorithm 1, line 8).
pub const COEFF_A: f64 = 0.3585;
/// See [`COEFF_A`].
pub const COEFF_B: f64 = 1.353;
/// See [`COEFF_A`].
pub const COEFF_C: f64 = 0.344;

/// The offline-precomputed integer constants of Algorithm 1
/// (lines 5–10): since the scale `S` is fixed by the clipping threshold,
/// all of these are computed once and simply written into the AP.
///
/// # Examples
///
/// ```
/// use softmap_softmax::{PrecisionConfig, SoftmaxConstants};
///
/// let c = SoftmaxConstants::from_config(&PrecisionConfig::new(8, 0, 16))?;
/// assert!(c.vln2 >= 1);
/// assert!(c.mu >= 1);
/// # Ok::<(), softmap_softmax::SoftmaxError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftmaxConstants {
    /// `v_ln2 = ⌊ln2 / S⌋` (line 5).
    pub vln2: u64,
    /// Barrett constant `µ = ⌊2^(2M) / v_ln2⌋` (line 6).
    pub mu: u64,
    /// `v_b = ⌊b / S⌋` (line 9).
    pub vb: u64,
    /// `v_c = ⌊c / (a·S²)⌋` (line 10).
    pub vc: u64,
    /// Maximum Barrett quotient for `M`-bit inputs
    /// (`⌊(2^M - 1)·µ / 2^(2M)⌋`, used to size shift microcode).
    pub q_max: u64,
    /// Largest attainable `v_approx` value (`v_b² + v_c`, reached at
    /// `q̂ = 0, r = 0`).
    pub vapprox_max: u64,
    /// Bits actually used by `v_approx` (`⌈log2(vapprox_max + 1)⌉`).
    ///
    /// The sum register allocates its `N` guard bits above *this* width,
    /// not above the (padded) Table I field allocation — otherwise the
    /// paper's observed `N = 8` truncation could never trigger at
    /// sequence lengths ≤ 4096 (see the README substitution notes).
    pub vapprox_used_bits: u32,
}

impl SoftmaxConstants {
    /// Computes the constants for a configuration and validates that
    /// they fit their Table I allocations.
    ///
    /// # Errors
    ///
    /// Returns [`SoftmaxError::BadConfig`] when the scale is too coarse
    /// (`v_ln2 == 0`) or a constant exceeds its allocated width.
    pub fn from_config(cfg: &PrecisionConfig) -> Result<Self, SoftmaxError> {
        let s = cfg.scale();
        if !(s.is_finite() && s > 0.0) {
            return Err(SoftmaxError::BadConfig(format!("bad scale {s}")));
        }
        let w = WidthTable::from_config(cfg);
        let vln2 = (core::f64::consts::LN_2 / s).floor() as u64;
        if vln2 == 0 {
            return Err(SoftmaxError::BadConfig(
                "vln2 = 0: scale too coarse for range reduction".to_string(),
            ));
        }
        let two_2m = 1u64 << (2 * cfg.m);
        let mu = two_2m / vln2;
        let vb = (COEFF_B / s).floor() as u64;
        let vc = (COEFF_C / (COEFF_A * s * s)).floor() as u64;
        let max_in = (1u64 << cfg.m) - 1;
        let q_max = ((u128::from(max_in) * u128::from(mu)) >> (2 * cfg.m)) as u64;

        let fits = |value: u64, bits: u32| value < (1u64 << bits);
        if !fits(vln2, w.vln2) {
            return Err(SoftmaxError::BadConfig(format!(
                "vln2 = {vln2} exceeds its {}-bit allocation (scale {s})",
                w.vln2
            )));
        }
        if !fits(mu, w.mu) {
            return Err(SoftmaxError::BadConfig(format!(
                "mu = {mu} exceeds its {}-bit allocation",
                w.mu
            )));
        }
        if !fits(vb, w.vb) {
            return Err(SoftmaxError::BadConfig(format!(
                "vb = {vb} exceeds its {}-bit allocation",
                w.vb
            )));
        }
        if !fits(vc, w.vc) {
            return Err(SoftmaxError::BadConfig(format!(
                "vc = {vc} exceeds its {}-bit allocation",
                w.vc
            )));
        }
        let vapprox_max = vb * vb + vc;
        let vapprox_used_bits = 64 - vapprox_max.leading_zeros();
        Ok(Self {
            vln2,
            mu,
            vb,
            vc,
            q_max,
            vapprox_max,
            vapprox_used_bits,
        })
    }

    /// Effective sum-register width for a configuration: the used
    /// `v_approx` bits plus the `N` guard bits, capped at the Table I
    /// allocation.
    #[must_use]
    pub fn effective_sum_bits(&self, cfg: &PrecisionConfig) -> u32 {
        let w = WidthTable::from_config(cfg);
        (self.vapprox_used_bits + cfg.n_sum_bits).min(w.sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_for_paper_configs() {
        for (m, _tc) in [(4, -4.0), (6, -7.0), (8, -7.0)] {
            let cfg = PrecisionConfig::new(m, 0, 16);
            let c = SoftmaxConstants::from_config(&cfg).unwrap();
            let s = cfg.scale();
            assert_eq!(c.vln2, (core::f64::consts::LN_2 / s).floor() as u64);
            assert!(c.vb > 0);
            assert!(c.vc > 0);
        }
    }

    #[test]
    fn m8_tc7_concrete_values() {
        // S = 7/128 = 0.0547; vln2 = floor(0.6931/0.0547) = 12, which
        // fits Table I's 4-bit allocation — this is what pins down the
        // paper's scale convention (see PrecisionConfig::scale).
        let cfg = PrecisionConfig::new(8, 0, 16);
        let c = SoftmaxConstants::from_config(&cfg).unwrap();
        assert_eq!(c.vln2, 12);
        assert_eq!(c.mu, 65536 / 12);
    }

    #[test]
    fn vln2_fits_four_bits_for_all_paper_configs() {
        for m in [4u32, 6, 8] {
            let c = SoftmaxConstants::from_config(&PrecisionConfig::new(m, 0, 16)).unwrap();
            assert!(c.vln2 < 16, "m={m} vln2={}", c.vln2);
            assert!(c.vln2 >= 1);
        }
    }

    #[test]
    fn barrett_quotient_error_at_most_one() {
        // q_hat = floor(x*mu >> 2M) must satisfy q - 1 <= q_hat <= q
        // where q = floor(x / vln2), for all M-bit inputs.
        for m in [4u32, 6, 8] {
            let cfg = PrecisionConfig::new(m, 0, 16);
            let c = SoftmaxConstants::from_config(&cfg).unwrap();
            for x in 0..(1u64 << m) {
                let q_exact = x / c.vln2;
                let q_hat = ((u128::from(x) * u128::from(c.mu)) >> (2 * m)) as u64;
                assert!(q_hat <= q_exact, "m={m} x={x}");
                assert!(q_exact - q_hat <= 1, "m={m} x={x}");
            }
        }
    }

    #[test]
    fn effective_sum_bits_track_actual_vapprox_width() {
        let cfg = PrecisionConfig::new(6, 0, 8);
        let c = SoftmaxConstants::from_config(&cfg).unwrap();
        // M=6, TC=-7: vb=6, vc=20 -> vapprox_max=56 -> 6 bits used
        assert_eq!(c.vb, 6);
        assert_eq!(c.vapprox_max, 56);
        assert_eq!(c.vapprox_used_bits, 6);
        assert_eq!(c.effective_sum_bits(&cfg), 14);
        // N=20 is capped by the Table I allocation (12 + 20 = 32 > 6+20)
        let cfg20 = PrecisionConfig::new(6, 0, 20);
        assert_eq!(c.effective_sum_bits(&cfg20), 26);
    }

    #[test]
    fn remainder_bounded_by_two_ln2() {
        // r = x - q_hat * vln2 stays in [0, 2*vln2) for all inputs.
        for m in [4u32, 6, 8] {
            let cfg = PrecisionConfig::new(m, 0, 16);
            let c = SoftmaxConstants::from_config(&cfg).unwrap();
            for x in 0..(1u64 << m) {
                let q_hat = ((u128::from(x) * u128::from(c.mu)) >> (2 * m)) as u64;
                let r = x - q_hat * c.vln2;
                assert!(r < 2 * c.vln2, "m={m} x={x} r={r}");
            }
        }
    }
}
