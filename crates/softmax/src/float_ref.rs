//! Exact floating-point softmax references.
//!
//! # Examples
//!
//! ```
//! let p = softmap_softmax::float_ref::softmax(&[0.0, 0.0]);
//! assert!((p[0] - 0.5).abs() < 1e-12);
//! ```

/// Numerically stable softmax (subtracts the maximum before
/// exponentiation, as in Algorithm 1 line 4).
///
/// Returns an empty vector for empty input.
#[must_use]
pub fn softmax(v: &[f64]) -> Vec<f64> {
    if v.is_empty() {
        return Vec::new();
    }
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = v.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax with inputs clipped to `[tc, 0]` after stabilization — the
/// FP counterpart of the paper's clipped quantization, useful for
/// separating clipping error from quantization error.
///
/// Returns an empty vector for empty input.
#[must_use]
pub fn softmax_clipped(v: &[f64], tc: f64) -> Vec<f64> {
    if v.is_empty() {
        return Vec::new();
    }
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = v.iter().map(|&x| (x - max).clamp(tc, 0.0).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// The I-BERT second-order polynomial approximation of `exp(p)` on
/// `p ∈ [-ln 2, 0]`, evaluated in floating point (used to separate
/// polynomial error from integer error).
#[must_use]
pub fn poly_exp(p: f64) -> f64 {
    use crate::constants::{COEFF_A, COEFF_B, COEFF_C};
    let q = (-p / core::f64::consts::LN_2).floor();
    let r = p + q * core::f64::consts::LN_2; // r in (-ln2, 0]
    let e = COEFF_A * (r + COEFF_B) * (r + COEFF_B) + COEFF_C;
    e * (-q).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, -2.0, 0.3, 4.0]);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[0.0, -1.0, -2.0]);
        let b = softmax(&[100.0, 99.0, 98.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let p = softmax(&[0.0, -1e6]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p[1] < 1e-12);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn clipping_flattens_the_tail() {
        let v = [0.0, -20.0];
        let exact = softmax(&v);
        let clipped = softmax_clipped(&v, -7.0);
        // the clipped tail probability is larger than the exact one
        assert!(clipped[1] > exact[1]);
        let total: f64 = clipped.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poly_exp_accurate_on_clip_range() {
        let mut p = -7.0;
        while p <= 0.0 {
            let err = (poly_exp(p) - p.exp()).abs();
            assert!(err < 4e-3, "p={p} err={err}");
            p += 0.01;
        }
    }
}
