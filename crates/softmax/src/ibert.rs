use crate::{PrecisionConfig, SoftmaxConstants, SoftmaxError, SumMode, WidthTable};

/// Result of one integer-only softmax evaluation.
///
/// `codes[i] · 2^-frac_bits` is the probability assigned to element `i`
/// (the paper's `v_sm`; the output scale is fixed by the `2M + 12`-bit
/// result column of the AP mapping, Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct IntSoftmaxOutput {
    /// Fixed-point probability codes (`v_sm`).
    pub codes: Vec<u64>,
    /// Fraction bits of the codes (`F = 2M + 11`).
    pub frac_bits: u32,
    /// Dequantized probabilities (`codes · 2^-F`).
    pub probabilities: Vec<f64>,
    /// The intermediate `v_approx` values (integer exponentials), kept
    /// for bit-exact cross-checking against the AP mapping.
    pub vapprox: Vec<u64>,
    /// The (possibly truncated) sum of `v_approx` used as divisor.
    pub sum: u64,
    /// The mathematically exact sum.
    pub sum_exact: u128,
    /// Whether the sum register overflowed (saturated or wrapped).
    pub sum_overflowed: bool,
}

/// Per-element intermediate trace of Algorithm 1, used to verify the AP
/// mapping step by step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTrace {
    /// `max(v) - v` magnitudes (the negated `v_stable`).
    pub neg_vstable: Vec<u64>,
    /// Barrett quotients `q̂`.
    pub q_hat: Vec<u64>,
    /// Range-reduction remainders `r = -v_corr`.
    pub r: Vec<u64>,
    /// Polynomial inputs `t = v_b - r` (saturated at 0).
    pub t: Vec<u64>,
    /// Polynomial outputs `(t² + v_c)`.
    pub poly: Vec<u64>,
    /// Shifted outputs `v_approx`.
    pub vapprox: Vec<u64>,
}

/// The bit-accurate integer-only softmax of Algorithm 1.
///
/// All intermediates are computed as unsigned magnitudes with the exact
/// widths of Table I; the AP mapping in the `softmap` crate reproduces
/// this pipeline bit-for-bit (verified by integration tests).
///
/// # Examples
///
/// ```
/// use softmap_softmax::{IntSoftmax, PrecisionConfig};
///
/// let sm = IntSoftmax::new(PrecisionConfig::new(8, 0, 16))?;
/// let out = sm.run_floats(&[0.0, -0.5, -1.0, -6.0])?;
/// // probabilities decrease with the score
/// assert!(out.probabilities[0] > out.probabilities[1]);
/// assert!(out.probabilities[2] > out.probabilities[3]);
/// # Ok::<(), softmap_softmax::SoftmaxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IntSoftmax {
    cfg: PrecisionConfig,
    consts: SoftmaxConstants,
    widths: WidthTable,
}

impl IntSoftmax {
    /// Builds the pipeline for one precision configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SoftmaxError::BadConfig`] if the configuration's
    /// constants do not fit their Table I allocations.
    pub fn new(cfg: PrecisionConfig) -> Result<Self, SoftmaxError> {
        let consts = SoftmaxConstants::from_config(&cfg)?;
        let widths = WidthTable::from_config(&cfg);
        Ok(Self {
            cfg,
            consts,
            widths,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PrecisionConfig {
        &self.cfg
    }

    /// The offline constants.
    #[must_use]
    pub fn constants(&self) -> &SoftmaxConstants {
        &self.consts
    }

    /// The Table I width allocations.
    #[must_use]
    pub fn widths(&self) -> &WidthTable {
        &self.widths
    }

    /// Quantizes real scores: stabilize (subtract max), clip to
    /// `[TC, 0]`, and round to signed `M`-bit codes in
    /// `[-2^(M-1), 0]`.
    #[must_use]
    pub fn quantize(&self, v: &[f64]) -> Vec<i64> {
        let mut out = Vec::with_capacity(v.len());
        self.quantize_into(v, &mut out);
        out
    }

    /// Allocation-free [`IntSoftmax::quantize`]: writes the codes into
    /// `out` (cleared first), reusing its capacity — the pooled
    /// execution path's entry point.
    pub fn quantize_into(&self, v: &[f64], out: &mut Vec<i64>) {
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let s = self.cfg.scale();
        let lo = -self.cfg.max_code_magnitude();
        out.clear();
        out.extend(v.iter().map(|&x| {
            let stable = (x - max).clamp(self.cfg.tc, 0.0);
            ((stable / s).round() as i64).clamp(lo, 0)
        }));
    }

    /// Runs the integer pipeline on quantized codes.
    ///
    /// # Errors
    ///
    /// * [`SoftmaxError::EmptyInput`] for an empty slice,
    /// * [`SoftmaxError::CodeOutOfRange`] if a code magnitude exceeds
    ///   the signed `M`-bit range.
    pub fn run_codes(&self, codes: &[i64]) -> Result<IntSoftmaxOutput, SoftmaxError> {
        let trace = self.trace_codes(codes)?;
        self.finish(&trace)
    }

    /// Runs quantization plus the integer pipeline on real scores.
    ///
    /// # Errors
    ///
    /// As [`IntSoftmax::run_codes`].
    pub fn run_floats(&self, v: &[f64]) -> Result<IntSoftmaxOutput, SoftmaxError> {
        if v.is_empty() {
            return Err(SoftmaxError::EmptyInput);
        }
        self.run_codes(&self.quantize(v))
    }

    /// Runs the pipeline over a batch of score rows, fanned out across
    /// host threads (one independent softmax per row, as the deployed
    /// accelerator would run one per tile). Results are in input order
    /// and identical to per-row [`IntSoftmax::run_floats`] calls.
    ///
    /// # Errors
    ///
    /// The first (by input order) failing row's error.
    pub fn run_floats_batch(
        &self,
        rows: &[Vec<f64>],
    ) -> Result<Vec<IntSoftmaxOutput>, SoftmaxError> {
        softmap_par::try_parallel_map(rows, |row| self.run_floats(row))
    }

    /// Batched [`IntSoftmax::run_codes`]; see
    /// [`IntSoftmax::run_floats_batch`].
    ///
    /// # Errors
    ///
    /// The first failing row's error.
    pub fn run_codes_batch(
        &self,
        rows: &[Vec<i64>],
    ) -> Result<Vec<IntSoftmaxOutput>, SoftmaxError> {
        softmap_par::try_parallel_map(rows, |row| self.run_codes(row))
    }

    /// Validates a code vector against the quantizer's range without
    /// computing the pipeline — the cheap precondition check shared by
    /// every entry point (the AP mapping uses it to vet its inputs
    /// without paying for a full scalar trace).
    ///
    /// # Errors
    ///
    /// As [`IntSoftmax::run_codes`].
    pub fn validate_codes(&self, codes: &[i64]) -> Result<(), SoftmaxError> {
        if codes.is_empty() {
            return Err(SoftmaxError::EmptyInput);
        }
        let lo = -self.cfg.max_code_magnitude();
        let hi = self.cfg.max_code_magnitude() - 1;
        for &c in codes {
            if c < lo || c > hi {
                return Err(SoftmaxError::CodeOutOfRange(c));
            }
        }
        Ok(())
    }

    /// Computes the per-element intermediates of Algorithm 1 — the
    /// specification the AP mapping is tested against.
    ///
    /// # Errors
    ///
    /// As [`IntSoftmax::run_codes`].
    pub fn trace_codes(&self, codes: &[i64]) -> Result<StepTrace, SoftmaxError> {
        self.validate_codes(codes)?;
        let m = self.cfg.m;
        let max = *codes.iter().max().expect("non-empty");
        let vapprox_mask = (1u64 << self.widths.vapprox) - 1;
        let poly_max = (1u64 << self.widths.poly) - 1;

        let n = codes.len();
        let mut tr = StepTrace {
            neg_vstable: Vec::with_capacity(n),
            q_hat: Vec::with_capacity(n),
            r: Vec::with_capacity(n),
            t: Vec::with_capacity(n),
            poly: Vec::with_capacity(n),
            vapprox: Vec::with_capacity(n),
        };
        for &c in codes {
            // Line 4 (as a magnitude): x = max(v) - v in [0, 2^M - 1].
            let x = (max - c) as u64;
            debug_assert!(x < (1 << m));
            // Line 7 via Barrett (lines 6-7): q̂ and remainder r = -v_corr.
            let q_hat = ((u128::from(x) * u128::from(self.consts.mu)) >> (2 * m)) as u64;
            let r = x - q_hat * self.consts.vln2;
            // Line 11, polynomial input: t = v_b + v_corr = v_b - r,
            // saturating at zero (covers the Barrett overshoot that the
            // paper's wider v_corr allocations would absorb).
            let t = self.consts.vb.saturating_sub(r);
            // Line 11, polynomial: (t² + v_c), within its allocation.
            let poly = (t * t + self.consts.vc).min(poly_max);
            // Line 11, shift: v_approx = poly >> q̂.
            let shifted = if q_hat >= 64 { 0 } else { poly >> q_hat };
            let vapprox = shifted.min(vapprox_mask);
            tr.neg_vstable.push(x);
            tr.q_hat.push(q_hat);
            tr.r.push(r);
            tr.t.push(t);
            tr.poly.push(poly);
            tr.vapprox.push(vapprox);
        }
        Ok(tr)
    }

    /// Completes the pipeline (sum, truncation, division) from a trace.
    ///
    /// # Errors
    ///
    /// Currently infallible for a valid trace; kept fallible for
    /// interface stability.
    pub fn finish(&self, trace: &StepTrace) -> Result<IntSoftmaxOutput, SoftmaxError> {
        let sum_exact: u128 = trace.vapprox.iter().map(|&v| u128::from(v)).sum();
        let sum_bits = self.consts.effective_sum_bits(&self.cfg);
        let sum_max = (1u128 << sum_bits) - 1;
        let (sum, overflowed) = match self.cfg.sum_mode {
            SumMode::Exact => (sum_exact, false),
            SumMode::Saturate => {
                if sum_exact > sum_max {
                    (sum_max, true)
                } else {
                    (sum_exact, false)
                }
            }
            SumMode::Wrap => {
                if sum_exact > sum_max {
                    (sum_exact & sum_max, true)
                } else {
                    (sum_exact, false)
                }
            }
        };
        // Line 12: v_sm = (v_approx << F) / sum. A wrapped sum can reach
        // zero; the hardware divider clamps the divisor at 1.
        let divisor = sum.max(1);
        let f = self.widths.frac_bits();
        let result_max = (1u128 << self.widths.result) - 1;
        let codes: Vec<u64> = trace
            .vapprox
            .iter()
            .map(|&v| (((u128::from(v) << f) / divisor).min(result_max)) as u64)
            .collect();
        let scale = (f64::from(f)).exp2().recip();
        let probabilities = codes.iter().map(|&c| c as f64 * scale).collect();
        Ok(IntSoftmaxOutput {
            codes,
            frac_bits: f,
            probabilities,
            vapprox: trace.vapprox.clone(),
            sum: sum as u64,
            sum_exact,
            sum_overflowed: overflowed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float_ref;
    use crate::metrics;

    fn best() -> IntSoftmax {
        IntSoftmax::new(PrecisionConfig::paper_best()).unwrap()
    }

    #[test]
    fn probabilities_sum_close_to_one() {
        let sm = best();
        let out = sm.run_floats(&[0.0, -1.0, -2.0, -0.5, -3.5]).unwrap();
        let total: f64 = out.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 0.01, "sum = {total}");
    }

    #[test]
    fn shift_invariance_is_exact_in_code_domain() {
        let sm = best();
        let codes = vec![-3i64, 0, -17, -31, -8];
        let shifted: Vec<i64> = codes.iter().map(|c| c - 1).collect();
        // shifting all codes equally must not change anything after
        // max subtraction (as long as codes stay in range)
        let a = sm.run_codes(&codes).unwrap();
        let b = sm.run_codes(&shifted).unwrap();
        assert_eq!(a.codes, b.codes);
    }

    #[test]
    fn close_to_float_softmax_at_high_precision() {
        let sm = IntSoftmax::new(PrecisionConfig::new(8, 0, 20)).unwrap();
        let v = [0.0, -0.3, -1.1, -2.2, -0.05, -4.0, -6.9, -0.77];
        let out = sm.run_floats(&v).unwrap();
        let exact = float_ref::softmax(&v);
        let kl = metrics::kl_divergence(&exact, &out.probabilities);
        assert!(kl < 1e-2, "kl = {kl}");
    }

    #[test]
    fn coarser_m_is_worse() {
        let v: Vec<f64> = (0..32).map(|i| -(f64::from(i) * 0.21) % 6.5).collect();
        let exact = float_ref::softmax(&v);
        let mut kls = Vec::new();
        for m in [4, 6, 8] {
            let sm = IntSoftmax::new(PrecisionConfig::new(m, 0, 20)).unwrap();
            let out = sm.run_floats(&v).unwrap();
            kls.push(metrics::kl_divergence(&exact, &out.probabilities));
        }
        assert!(
            kls[0] > kls[2],
            "M=4 ({}) should be worse than M=8 ({})",
            kls[0],
            kls[2]
        );
    }

    #[test]
    fn vcorr_width_is_irrelevant() {
        // The paper's finding: varying v_corr does not change results.
        let v: Vec<f64> = (0..64).map(|i| -(f64::from(i) * 0.37) % 7.0).collect();
        let base = IntSoftmax::new(PrecisionConfig::new(6, 0, 16))
            .unwrap()
            .run_floats(&v)
            .unwrap();
        for delta in [1, 2] {
            let out = IntSoftmax::new(PrecisionConfig::new(6, delta, 16))
                .unwrap()
                .run_floats(&v)
                .unwrap();
            assert_eq!(base.codes, out.codes, "delta = {delta}");
        }
    }

    #[test]
    fn small_n_saturates_on_long_inputs() {
        // 4096 near-equal scores: the sum needs ~log2(4096) extra bits,
        // so N = 8 must saturate while N = 16 must not.
        let v = vec![0.0f64; 4096];
        let sat = IntSoftmax::new(PrecisionConfig::new(6, 0, 8))
            .unwrap()
            .run_floats(&v)
            .unwrap();
        assert!(sat.sum_overflowed);
        let ok = IntSoftmax::new(PrecisionConfig::new(6, 0, 16))
            .unwrap()
            .run_floats(&v)
            .unwrap();
        assert!(!ok.sum_overflowed);
        // and the saturated distribution is distorted: it no longer sums
        // to ~1 (each element got a too-large share).
        let sat_total: f64 = sat.probabilities.iter().sum();
        let ok_total: f64 = ok.probabilities.iter().sum();
        assert!((ok_total - 1.0).abs() < 0.05, "ok sum = {ok_total}");
        assert!(sat_total > 1.5, "saturated sum = {sat_total}");
    }

    #[test]
    fn wrap_mode_is_catastrophic() {
        let v = vec![0.0f64; 4096];
        let wrap = IntSoftmax::new(PrecisionConfig::new(6, 0, 8).with_sum_mode(SumMode::Wrap))
            .unwrap()
            .run_floats(&v)
            .unwrap();
        assert!(wrap.sum_overflowed);
        // wrapped sum is much smaller than the saturated one
        let sat = IntSoftmax::new(PrecisionConfig::new(6, 0, 8))
            .unwrap()
            .run_floats(&v)
            .unwrap();
        assert!(wrap.sum < sat.sum);
    }

    #[test]
    fn argmax_is_preserved() {
        let sm = best();
        let v = [-2.0, -0.1, -5.0, -0.4, -3.3];
        let out = sm.run_floats(&v).unwrap();
        let argmax_in = 1;
        let argmax_out = out
            .probabilities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax_out, argmax_in);
    }

    #[test]
    fn rejects_bad_inputs() {
        let sm = best();
        assert_eq!(sm.run_floats(&[]), Err(SoftmaxError::EmptyInput));
        assert_eq!(
            sm.run_codes(&[1000]),
            Err(SoftmaxError::CodeOutOfRange(1000))
        );
        assert_eq!(
            sm.run_codes(&[-1000]),
            Err(SoftmaxError::CodeOutOfRange(-1000))
        );
    }

    #[test]
    fn quantize_respects_clipping() {
        let sm = best();
        let codes = sm.quantize(&[0.0, -3.0, -100.0]);
        assert_eq!(codes[0], 0);
        assert_eq!(codes[2], -sm.config().max_code_magnitude());
        assert!(codes[1] < 0 && codes[1] > codes[2]);
    }

    #[test]
    fn batched_runs_match_per_row() {
        let sm = best();
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|v| {
                (0..24)
                    .map(|i| -((v * 3 + i) as f64 * 0.29) % 6.7)
                    .collect()
            })
            .collect();
        let batch = sm.run_floats_batch(&rows).unwrap();
        assert_eq!(batch.len(), rows.len());
        for (row, got) in rows.iter().zip(&batch) {
            let single = sm.run_floats(row).unwrap();
            assert_eq!(single.codes, got.codes);
            assert_eq!(single.sum, got.sum);
        }
        assert!(matches!(
            sm.run_floats_batch(&[vec![0.0], vec![]]),
            Err(SoftmaxError::EmptyInput)
        ));
    }

    #[test]
    fn trace_intermediates_fit_allocated_widths() {
        let sm = IntSoftmax::new(PrecisionConfig::new(8, 0, 16)).unwrap();
        let codes: Vec<i64> = (-128..=0).collect();
        let tr = sm.trace_codes(&codes).unwrap();
        let w = sm.widths();
        for i in 0..codes.len() {
            assert!(tr.neg_vstable[i] < 1 << w.vstable);
            assert!(tr.q_hat[i] < 1 << w.q);
            assert!(tr.r[i] < 1 << w.vcorr.max(5), "r = {}", tr.r[i]);
            assert!(tr.poly[i] < 1 << w.poly);
            assert!(tr.vapprox[i] < 1 << w.vapprox);
        }
    }
}
