//! Bit-accurate integer-only softmax — Algorithm 1 of SoftmAP.
//!
//! The paper approximates `exp` with I-BERT's second-order integer
//! polynomial after range reduction by `ln 2`, computes the reduction's
//! modulus with Barrett reduction (multiply/shift instead of divide),
//! and normalizes with one integer division. Every intermediate has an
//! allocated bit width (Table I); the sum of exponentials is truncated
//! to `N` extra bits. This crate is the *scalar specification* of that
//! pipeline: the AP mapping in the `softmap` crate reproduces it
//! bit-for-bit.
//!
//! * [`PrecisionConfig`] — `(M, Δ_vcorr, N, TC)` grid point,
//! * [`WidthTable`] — Table I (allocated widths per intermediate),
//! * [`SoftmaxConstants`] — the offline-precomputed constants
//!   (`v_ln2`, `µ`, `v_b`, `v_c`),
//! * [`IntSoftmax`] — the end-to-end integer pipeline,
//! * [`float_ref`] — exact softmax reference,
//! * [`metrics`] — KL divergence and friends,
//! * [`sweep`] — the paper's precision grid.
//!
//! # Examples
//!
//! ```
//! use softmap_softmax::{IntSoftmax, PrecisionConfig};
//!
//! let cfg = PrecisionConfig::paper_best(); // M=6, vcorr=M, N=16, TC=-7
//! let sm = IntSoftmax::new(cfg)?;
//! let scores = [0.0_f64, -1.0, -2.0, -3.0];
//! let out = sm.run_floats(&scores)?;
//! let sum: f64 = out.probabilities.iter().sum();
//! assert!((sum - 1.0).abs() < 0.05);
//! # Ok::<(), softmap_softmax::SoftmaxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod float_ref;
pub mod metrics;
pub mod sweep;

mod config;
mod constants;
mod ibert;
mod widths;

pub use config::{PrecisionConfig, SumMode};
pub use constants::SoftmaxConstants;
pub use ibert::{IntSoftmax, IntSoftmaxOutput};
pub use widths::WidthTable;

/// Errors from configuring or running the integer softmax.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftmaxError {
    /// The configuration is internally inconsistent (e.g. `v_ln2 == 0`
    /// because the scale is too coarse).
    BadConfig(String),
    /// The input vector is empty.
    EmptyInput,
    /// An input code is out of the quantizer's range.
    CodeOutOfRange(i64),
}

impl core::fmt::Display for SoftmaxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            Self::EmptyInput => write!(f, "input vector is empty"),
            Self::CodeOutOfRange(c) => write!(f, "quantized code {c} out of range"),
        }
    }
}

impl std::error::Error for SoftmaxError {}
