//! Distribution error metrics used by the precision sensitivity study.
//!
//! # Examples
//!
//! ```
//! use softmap_softmax::metrics;
//!
//! let p = [0.5, 0.5];
//! let q = [0.5, 0.5];
//! assert!(metrics::kl_divergence(&p, &q) < 1e-12);
//! assert_eq!(metrics::max_abs_diff(&p, &q), 0.0);
//! ```

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats. Both inputs are
/// renormalized first, and `q` entries are floored at a tiny epsilon so
/// truncated-to-zero codes do not produce infinities.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    const EPS: f64 = 1e-12;
    let ps: f64 = p.iter().sum();
    let qs: f64 = q.iter().sum::<f64>().max(EPS);
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| {
            let pi = pi / ps;
            let qi = (qi / qs).max(EPS);
            if pi <= 0.0 {
                0.0
            } else {
                pi * (pi / qi).ln()
            }
        })
        .sum()
}

/// Maximum absolute difference between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn max_abs_diff(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    p.iter()
        .zip(q)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// L1 distance between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn l1_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum()
}

/// Total-variation distance (half the L1 distance of the renormalized
/// distributions).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let ps: f64 = p.iter().sum();
    let qs: f64 = q.iter().sum::<f64>().max(1e-300);
    0.5 * p
        .iter()
        .zip(q)
        .map(|(&a, &b)| (a / ps - b / qs).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_is_zero_for_identical() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_handles_zero_in_q() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        let kl = kl_divergence(&p, &q);
        assert!(kl.is_finite());
        assert!(kl > 1.0);
    }

    #[test]
    fn kl_renormalizes_inputs() {
        let p = [2.0, 3.0, 5.0];
        let q = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &q) < 1e-12);
    }

    #[test]
    fn tv_between_zero_and_one() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12);
        assert!(total_variation(&p, &p) < 1e-12);
    }

    #[test]
    fn l1_and_max_abs_relate() {
        let p = [0.1, 0.4, 0.5];
        let q = [0.2, 0.3, 0.5];
        assert!(max_abs_diff(&p, &q) <= l1_distance(&p, &q));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = kl_divergence(&[0.5], &[0.5, 0.5]);
    }
}
