//! The paper's precision grid and a software-only error sweep.
//!
//! Tables III/IV evaluate perplexity over
//! `M ∈ {6, 8} × v_corr ∈ {M, M+1, M+2} × N ∈ {8, 12, 16, 20}` (M = 4 is
//! reported separately as unusable). This module provides the grid and a
//! model-free error sweep (KL divergence of the integer softmax against
//! the exact one on sampled score vectors), which isolates the same
//! precision effects without a language model.
//!
//! # Examples
//!
//! ```
//! use softmap_softmax::sweep;
//!
//! let grid = sweep::paper_grid();
//! assert_eq!(grid.len(), 2 * 3 * 4); // M x delta x N
//! ```

use crate::{float_ref, metrics, IntSoftmax, PrecisionConfig, SoftmaxError};

/// The `(M, Δ, N)` grid of Tables III/IV (M = 6 and 8).
#[must_use]
pub fn paper_grid() -> Vec<PrecisionConfig> {
    let mut grid = Vec::new();
    for &n in &[8u32, 12, 16, 20] {
        for &delta in &[0u32, 1, 2] {
            for &m in &[6u32, 8] {
                grid.push(PrecisionConfig::new(m, delta, n));
            }
        }
    }
    grid
}

/// The full grid including the M = 4 column the paper reports as
/// unusable (TC = −4 per the paper's convention).
#[must_use]
pub fn full_grid() -> Vec<PrecisionConfig> {
    let mut grid = Vec::new();
    for &n in &[8u32, 12, 16, 20] {
        for &delta in &[0u32, 1, 2] {
            for &m in &[4u32, 6, 8] {
                grid.push(PrecisionConfig::new(m, delta, n));
            }
        }
    }
    grid
}

/// Aggregate error of one configuration over a set of score vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The configuration measured.
    pub config: PrecisionConfig,
    /// Mean KL divergence `KL(exact ‖ integer)` over the vectors.
    pub mean_kl: f64,
    /// Maximum total-variation distance observed.
    pub max_tv: f64,
    /// Fraction of vectors whose sum register overflowed.
    pub overflow_rate: f64,
}

/// Runs the error sweep of `configs` over `score_vectors`.
///
/// # Errors
///
/// Propagates configuration errors from [`IntSoftmax::new`] and input
/// errors from evaluation.
pub fn run_error_sweep(
    configs: &[PrecisionConfig],
    score_vectors: &[Vec<f64>],
) -> Result<Vec<SweepPoint>, SoftmaxError> {
    let mut points = Vec::with_capacity(configs.len());
    for &cfg in configs {
        let sm = IntSoftmax::new(cfg)?;
        let mut kl_sum = 0.0;
        let mut max_tv: f64 = 0.0;
        let mut overflows = 0usize;
        for v in score_vectors {
            let exact = float_ref::softmax(v);
            let out = sm.run_floats(v)?;
            kl_sum += metrics::kl_divergence(&exact, &out.probabilities);
            max_tv = max_tv.max(metrics::total_variation(&exact, &out.probabilities));
            overflows += usize::from(out.sum_overflowed);
        }
        let n = score_vectors.len().max(1) as f64;
        points.push(SweepPoint {
            config: cfg,
            mean_kl: kl_sum / n,
            max_tv,
            overflow_rate: overflows as f64 / n,
        });
    }
    Ok(points)
}

/// Deterministic synthetic attention-score vectors for sweeps: a mix of
/// peaked and flat rows with the dynamic range the paper's calibration
/// found (scores in roughly `[-10, 0]` after stabilization).
#[must_use]
pub fn synthetic_score_vectors(n_vectors: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    // Small deterministic LCG so the sweep does not depend on rand.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n_vectors)
        .map(|i| {
            let sharpness = 0.5 + 3.0 * (i % 7) as f64 / 6.0;
            (0..len)
                .map(|_| {
                    let u = next();
                    -(u.powf(0.7) * 10.0 * sharpness / 3.5)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_expected_sizes() {
        assert_eq!(paper_grid().len(), 24);
        assert_eq!(full_grid().len(), 36);
    }

    #[test]
    fn sweep_reproduces_paper_ordering() {
        // On medium-length vectors: N=16 is at least as good as N=8,
        // M=8 at least as good as M=6 (in KL), and delta is irrelevant.
        let vectors = synthetic_score_vectors(8, 512, 7);
        let configs = [
            PrecisionConfig::new(6, 0, 8),
            PrecisionConfig::new(6, 0, 16),
            PrecisionConfig::new(8, 0, 16),
            PrecisionConfig::new(6, 1, 16),
            PrecisionConfig::new(6, 2, 16),
        ];
        let pts = run_error_sweep(&configs, &vectors).unwrap();
        let by_label: std::collections::HashMap<String, &SweepPoint> =
            pts.iter().map(|p| (p.config.label(), p)).collect();
        let n8 = by_label["M=6/vcorr=M/N=8"].mean_kl;
        let n16 = by_label["M=6/vcorr=M/N=16"].mean_kl;
        let m8 = by_label["M=8/vcorr=M/N=16"].mean_kl;
        assert!(n16 <= n8, "N=16 ({n16}) should beat N=8 ({n8})");
        assert!(m8 <= n16 * 1.5, "M=8 ({m8}) should be comparable or better");
        // delta irrelevance is bit-exact
        assert_eq!(
            by_label["M=6/vcorr=M+1/N=16"].mean_kl,
            by_label["M=6/vcorr=M/N=16"].mean_kl
        );
        assert_eq!(
            by_label["M=6/vcorr=M+2/N=16"].mean_kl,
            by_label["M=6/vcorr=M/N=16"].mean_kl
        );
    }

    #[test]
    fn synthetic_vectors_are_deterministic_and_nonpositive() {
        let a = synthetic_score_vectors(3, 16, 42);
        let b = synthetic_score_vectors(3, 16, 42);
        assert_eq!(a, b);
        for v in &a {
            for &x in v {
                assert!(x <= 0.0);
            }
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        let pts = run_error_sweep(&[], &[]).unwrap();
        assert!(pts.is_empty());
    }
}
