use crate::PrecisionConfig;

/// Allocated bit widths for every intermediate of Algorithm 1 —
/// the paper's Table I, generated from the precision configuration.
///
/// The closed forms (verified cell-by-cell against the published table):
///
/// * `v`, `v_stable`, `v_b`: `M` bits
/// * `v_ln2`: 4 bits
/// * `v_c`: `2M` bits
/// * `(v_corr + v_b)² + v_c`: `2M + 3 + 2Δ` bits
/// * `v_approx`: `M + 6 + 2Δ` bits
/// * `sum`: `v_approx + N` bits
///
/// # Examples
///
/// ```
/// use softmap_softmax::{PrecisionConfig, WidthTable};
///
/// let w = WidthTable::from_config(&PrecisionConfig::new(8, 0, 16));
/// assert_eq!(w.poly, 19);   // Table I: 2·8+3
/// assert_eq!(w.vapprox, 14);
/// assert_eq!(w.sum, 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthTable {
    /// Quantized input width (`M`).
    pub v: u32,
    /// Stabilized input width (`M`).
    pub vstable: u32,
    /// `v_ln2` width (4 bits in the paper for all `M`).
    pub vln2: u32,
    /// `v_b` width (`M`).
    pub vb: u32,
    /// `v_c` width (`2M`).
    pub vc: u32,
    /// `v_corr` width (`M + Δ`).
    pub vcorr: u32,
    /// Polynomial `(v_corr+v_b)² + v_c` width (`2M + 3 + 2Δ`).
    pub poly: u32,
    /// `v_approx` width (`M + 6 + 2Δ`).
    pub vapprox: u32,
    /// Sum register width (`v_approx + N`).
    pub sum: u32,
    /// Barrett constant `µ` width (`2M + 1`).
    pub mu: u32,
    /// Quotient `q` width (enough for `(2^M - 1) / v_ln2`).
    pub q: u32,
    /// Final result width (`2M + 12`, the paper's R column).
    pub result: u32,
}

impl WidthTable {
    /// Builds the width table for a configuration.
    #[must_use]
    pub fn from_config(cfg: &PrecisionConfig) -> Self {
        let m = cfg.m;
        let d = cfg.vcorr_delta;
        Self {
            v: m,
            vstable: m,
            vln2: 4,
            vb: m,
            vc: 2 * m,
            vcorr: m + d,
            poly: 2 * m + 3 + 2 * d,
            vapprox: m + 6 + 2 * d,
            sum: m + 6 + 2 * d + cfg.n_sum_bits,
            mu: 2 * m + 1,
            // v_ln2 >= 1, so q <= 2^M - 1; M bits always suffice.
            q: m,
            result: 2 * m + 12,
        }
    }

    /// Fraction bits of the final division (`2M + 11`): the quotient of
    /// `v_approx << F / sum` then fits the `2M + 12`-bit result column.
    #[must_use]
    pub fn frac_bits(&self) -> u32 {
        self.result - 1
    }

    /// Rows of the paper's Table I for this configuration, as
    /// `(name, width)` pairs in the paper's order.
    #[must_use]
    pub fn rows(&self) -> Vec<(&'static str, u32)> {
        vec![
            ("v", self.v),
            ("vstable", self.vstable),
            ("vln2", self.vln2),
            ("vb", self.vb),
            ("vc", self.vc),
            ("(vcorr+vb)^2+vc", self.poly),
            ("vapprox", self.vapprox),
            ("sum", self.sum),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every cell of the published Table I.
    #[test]
    fn reproduces_paper_table_i_exactly() {
        // (delta, m) -> expected (poly, vapprox)
        let poly_expect = [
            // delta 0: M=4,6,8
            (0, 4, 11, 10),
            (0, 6, 15, 12),
            (0, 8, 19, 14),
            // delta 1
            (1, 4, 13, 12),
            (1, 6, 17, 14),
            (1, 8, 21, 16),
            // delta 2
            (2, 4, 15, 14),
            (2, 6, 19, 16),
            (2, 8, 23, 18),
        ];
        for (d, m, poly, vapprox) in poly_expect {
            let w = WidthTable::from_config(&PrecisionConfig::new(m, d, 16));
            assert_eq!(w.poly, poly, "poly M={m} delta={d}");
            assert_eq!(w.vapprox, vapprox, "vapprox M={m} delta={d}");
            assert_eq!(w.v, m);
            assert_eq!(w.vstable, m);
            assert_eq!(w.vln2, 4);
            assert_eq!(w.vb, m);
            assert_eq!(w.vc, 2 * m);
        }
        // Sum rows for all N, delta=0..2, M=4,6,8 (the paper's 4x9 block).
        let sum_expect: [(u32, [[u32; 3]; 3]); 4] = [
            (8, [[18, 20, 22], [20, 22, 24], [22, 24, 26]]),
            (12, [[22, 24, 26], [24, 26, 28], [26, 28, 30]]),
            (16, [[26, 28, 30], [28, 30, 32], [30, 32, 34]]),
            (20, [[30, 32, 34], [32, 34, 36], [34, 36, 38]]),
        ];
        for (n, by_delta) in sum_expect {
            for (d, row) in by_delta.iter().enumerate() {
                for (mi, &expect) in row.iter().enumerate() {
                    let m = [4u32, 6, 8][mi];
                    let w = WidthTable::from_config(&PrecisionConfig::new(m, d as u32, n));
                    assert_eq!(w.sum, expect, "sum M={m} delta={d} N={n}");
                }
            }
        }
    }

    #[test]
    fn frac_bits_fit_result_column() {
        for m in [4, 6, 8] {
            let w = WidthTable::from_config(&PrecisionConfig::new(m, 0, 16));
            assert_eq!(w.result, 2 * m + 12);
            assert_eq!(w.frac_bits(), 2 * m + 11);
        }
    }

    #[test]
    fn rows_cover_paper_rows() {
        let w = WidthTable::from_config(&PrecisionConfig::paper_best());
        let names: Vec<&str> = w.rows().iter().map(|r| r.0).collect();
        assert_eq!(
            names,
            vec![
                "v",
                "vstable",
                "vln2",
                "vb",
                "vc",
                "(vcorr+vb)^2+vc",
                "vapprox",
                "sum"
            ]
        );
    }
}
