//! Property-based tests for the integer-only softmax specification.

use proptest::prelude::*;
use softmap_softmax::{float_ref, metrics, IntSoftmax, PrecisionConfig, SumMode};

fn config_strategy() -> impl Strategy<Value = PrecisionConfig> {
    (
        prop_oneof![Just(4u32), Just(6), Just(8)],
        0u32..=2,
        prop_oneof![Just(8u32), Just(12), Just(16), Just(20)],
    )
        .prop_map(|(m, d, n)| PrecisionConfig::new(m, d, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn probabilities_are_valid(cfg in config_strategy(),
                               v in prop::collection::vec(-10.0f64..0.0, 1..64)) {
        let sm = IntSoftmax::new(cfg).unwrap();
        let out = sm.run_floats(&v).unwrap();
        for &p in &out.probabilities {
            prop_assert!(p >= 0.0);
            prop_assert!(p <= 1.0 + 1e-9);
        }
        if !out.sum_overflowed {
            let total: f64 = out.probabilities.iter().sum();
            // floor rounding loses at most len * 2^-F
            prop_assert!(total <= 1.0 + 1e-9, "total = {total}");
            prop_assert!(total > 0.8, "total = {total}");
        }
    }

    #[test]
    fn codes_shift_invariant(cfg in config_strategy(),
                             raw in prop::collection::vec(-20i64..=0, 2..32),
                             shift in 0i64..5) {
        let sm = IntSoftmax::new(cfg).unwrap();
        let lo = -cfg.max_code_magnitude();
        let codes: Vec<i64> = raw.iter().map(|&c| c.max(lo + 5)).collect();
        let shifted: Vec<i64> = codes.iter().map(|&c| (c - shift).max(lo)).collect();
        // only compare when the shift kept everything in range
        if shifted.iter().zip(&codes).all(|(&s, &c)| s == c - shift) {
            let a = sm.run_codes(&codes).unwrap();
            let b = sm.run_codes(&shifted).unwrap();
            prop_assert_eq!(a.codes, b.codes);
        }
    }

    #[test]
    fn vcorr_delta_never_changes_output(
        m in prop_oneof![Just(6u32), Just(8)],
        n in prop_oneof![Just(8u32), Just(16)],
        v in prop::collection::vec(-9.0f64..0.0, 1..48),
    ) {
        let base = IntSoftmax::new(PrecisionConfig::new(m, 0, n)).unwrap()
            .run_floats(&v).unwrap();
        for d in [1u32, 2] {
            let out = IntSoftmax::new(PrecisionConfig::new(m, d, n)).unwrap()
                .run_floats(&v).unwrap();
            prop_assert_eq!(&base.codes, &out.codes);
        }
    }

    #[test]
    fn exact_mode_never_overflows(v in prop::collection::vec(-9.0f64..0.0, 1..256)) {
        let cfg = PrecisionConfig::new(6, 0, 8).with_sum_mode(SumMode::Exact);
        let out = IntSoftmax::new(cfg).unwrap().run_floats(&v).unwrap();
        prop_assert!(!out.sum_overflowed);
        prop_assert_eq!(u128::from(out.sum), out.sum_exact);
    }

    #[test]
    fn tv_to_exact_softmax_bounded_by_tail_mass(
        v in prop::collection::vec(-7.0f64..0.0, 2..64),
    ) {
        // At M = 6 the integer exponential legitimately truncates deep
        // tails to zero (scores more than ~4 below the max produce
        // v_approx = 0 — the source of the paper's visible M=6
        // perplexity gap). The structural property is therefore:
        // total-variation error is bounded by the exact tail mass plus
        // a small quantization slack.
        let sm = IntSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let out = sm.run_floats(&v).unwrap();
        let exact = float_ref::softmax(&v);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let tail_mass: f64 = v
            .iter()
            .zip(&exact)
            .filter(|(&x, _)| x - max < -3.4)
            .map(|(_, &p)| p)
            .sum();
        let tv = metrics::total_variation(&exact, &out.probabilities);
        prop_assert!(tv <= tail_mass + 0.08, "tv = {tv}, tail = {tail_mass}");
    }

    #[test]
    fn tv_small_when_no_deep_tail(v in prop::collection::vec(-3.0f64..0.0, 2..64)) {
        // Without deep-tail elements the best-precision integer softmax
        // tracks the exact one closely.
        let sm = IntSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let out = sm.run_floats(&v).unwrap();
        let exact = float_ref::softmax(&v);
        let tv = metrics::total_variation(&exact, &out.probabilities);
        prop_assert!(tv < 0.08, "tv = {tv}");
    }

    #[test]
    fn quantize_codes_always_in_range(
        cfg in config_strategy(),
        v in prop::collection::vec(-1e4f64..1e4, 1..64),
    ) {
        let sm = IntSoftmax::new(cfg).unwrap();
        let codes = sm.quantize(&v);
        for &c in &codes {
            prop_assert!(c <= 0);
            prop_assert!(c >= -cfg.max_code_magnitude());
        }
        // and the pipeline accepts its own quantizer's output
        prop_assert!(sm.run_codes(&codes).is_ok());
    }

    #[test]
    fn saturate_dominates_wrap(v in prop::collection::vec(-0.5f64..0.0, 512..1024)) {
        // Saturated sums are always >= wrapped sums.
        let sat = IntSoftmax::new(PrecisionConfig::new(6, 0, 8)).unwrap()
            .run_floats(&v).unwrap();
        let wrap = IntSoftmax::new(
            PrecisionConfig::new(6, 0, 8).with_sum_mode(SumMode::Wrap)).unwrap()
            .run_floats(&v).unwrap();
        prop_assert!(sat.sum >= wrap.sum);
        prop_assert_eq!(sat.sum_exact, wrap.sum_exact);
    }
}
