//! AP playground: the paper's Fig. 3 XOR walk-through plus the basic
//! arithmetic repertoire of the associative processor.
//!
//! ```text
//! cargo run --example ap_playground
//! ```

use softmap_ap::{cost, ApConfig, ApCore, DivStyle, EnergyModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Fig. 3: XOR of A = [3, 0, 2, 3] and B = [1, 1, 2, 2] --------
    let mut ap = ApCore::new(ApConfig::new(4, 12))?;
    let a = ap.alloc_field(2)?;
    let b = ap.alloc_field(2)?;
    let r = ap.alloc_field(2)?;
    ap.load(a, &[0b11, 0b00, 0b10, 0b11])?;
    ap.load(b, &[0b01, 0b01, 0b10, 0b10])?;
    ap.xor(a, b, r)?;
    println!("Fig. 3 XOR example:");
    println!("  A = {:?}", ap.read(a));
    println!("  B = {:?}", ap.read(b));
    println!("  R = {:?}  (paper: [2, 1, 0, 1])", ap.read(r));
    println!("  {}", ap.stats());

    // ---- word-parallel arithmetic ------------------------------------
    let mut ap = ApCore::new(ApConfig::new(8, 80))?;
    let x = ap.alloc_field(6)?;
    let y = ap.alloc_field(6)?;
    let acc = ap.alloc_field(7)?;
    let prod = ap.alloc_field(12)?;
    let quot = ap.alloc_field(10)?;
    let xs = [3u64, 7, 11, 23, 42, 51, 60, 63];
    let ys = [1u64, 2, 5, 9, 13, 17, 29, 31];
    ap.load(x, &xs)?;
    ap.load(y, &ys)?;
    ap.copy(x, acc.sub(0, 6))?;
    ap.reset_stats();
    ap.add_into(acc, y)?;
    println!("\nAddition x + y = {:?}", ap.read(acc));
    println!(
        "  measured {} cycles; Table II formula 2M+8M+M+1 = {} (M = 6)",
        ap.stats().cycles(),
        cost::addition(6)
    );

    ap.reset_stats();
    ap.mul(x, y, prod)?;
    println!("\nMultiplication x * y = {:?}", ap.read(prod));
    println!(
        "  measured {} cycles; Table II formula 2M+8M^2+2M = {}",
        ap.stats().cycles(),
        cost::multiplication(6)
    );

    ap.reset_stats();
    ap.divide(x, y, quot, 2, DivStyle::Restoring)?;
    println!("\nFixed-point division (x << 2) / y = {:?}", ap.read(quot));
    println!(
        "  measured {} cycles (restoring divider)",
        ap.stats().cycles()
    );

    let (max, rows) = ap.max_search(x);
    println!(
        "\nMax-search: max = {max} at rows {:?}",
        rows.iter_set().collect::<Vec<_>>()
    );

    // ---- 2D reduction -------------------------------------------------
    let sum_field = ap.alloc_field(12)?;
    let sums = ap.reduce_sum_2d(x, sum_field, 8)?;
    println!(
        "2D reduction: sum(x) = {} (expected {})",
        sums[0],
        xs.iter().sum::<u64>()
    );

    let energy = EnergyModel::nm16().energy(&ap.stats());
    println!("\nEnergy of this session: {energy}");
    Ok(())
}
