//! A full attention-softmax round trip on the AP: compute QKᵀ scores on
//! the host, run the sixteen-step integer softmax dataflow on the
//! simulated AP, and report the per-step cycle/energy breakdown
//! (Figs. 4/5 of the paper).
//!
//! ```text
//! cargo run --release --example attention_block
//! ```

use softmap::{ApSoftmax, ApSoftmaxRun, TileState};
use softmap_ap::EnergyModel;
use softmap_softmax::{float_ref, metrics, IntSoftmax, PrecisionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature attention head: 64 query/key vectors of dimension 16.
    let seq_len = 64usize;
    let dh = 16usize;
    let scale = 1.0 / (dh as f64).sqrt();
    // Deterministic pseudo-embeddings.
    let feat = |i: usize, k: usize| ((i * 31 + k * 17) % 13) as f64 / 13.0 - 0.5;
    let q: Vec<Vec<f64>> = (0..seq_len)
        .map(|i| (0..dh).map(|k| feat(i, k)).collect())
        .collect();
    let k_mat = q.clone(); // self-attention

    // Score each query row against all keys and stream every row
    // through ONE pooled tile + run buffer (the zero-allocation
    // steady-state path): row 0 compiles the shape's plan, every
    // further row replays it.
    let row_scores = |i: usize| -> Vec<f64> {
        (0..seq_len)
            .map(|j| {
                let dot: f64 = q[i].iter().zip(&k_mat[j]).map(|(a, b)| a * b).sum();
                dot * scale * 4.0 // spread the dynamic range
            })
            .collect()
    };
    let cfg = PrecisionConfig::paper_best();
    let mapping = ApSoftmax::new(cfg)?;
    let spec = IntSoftmax::new(cfg)?;
    let mut state = TileState::new();
    let mut run = ApSoftmaxRun::default();
    let row = 37;
    for i in 0..seq_len {
        let s = row_scores(i);
        mapping.execute_floats_into(&mut state, &s, &mut run)?;
        let scalar = spec.run_floats(&s)?;
        assert_eq!(
            run.codes, scalar.codes,
            "AP must match the scalar spec bit-exactly on row {i}"
        );
    }
    // Leave row `row`'s result in `run` for the report below.
    let scores = row_scores(row);
    mapping.execute_floats_into(&mut state, &scores, &mut run)?;
    let plans = mapping.plan_stats();
    assert_eq!(plans.compiles, 1, "one shape, one compiled plan");

    println!(
        "attention row {row}: {} keys, config {}, AP tile {} rows x {} cols",
        seq_len,
        cfg.label(),
        run.rows,
        run.cols_used
    );

    let energy = EnergyModel::nm16();
    println!("\nper-step breakdown (Fig. 5 dataflow):");
    println!(
        "{:>32} {:>10} {:>14} {:>12}",
        "step", "cycles", "cell events", "energy"
    );
    for s in &run.steps {
        let e = energy.energy(&s.stats);
        println!(
            "{:>32} {:>10} {:>14} {:>10.2} nJ",
            s.name,
            s.stats.cycles(),
            s.stats.cell_events(),
            e.total_j * 1e9
        );
    }
    let total_e = energy.energy(&run.total);
    println!(
        "{:>32} {:>10} {:>14} {:>10.2} nJ",
        "TOTAL",
        run.total.cycles(),
        run.total.cell_events(),
        total_e.total_j * 1e9
    );

    let exact = float_ref::softmax(&scores);
    let probs = run.probabilities();
    println!(
        "\ndistribution quality: KL(exact||AP) = {:.3e}, TV = {:.3e}",
        metrics::kl_divergence(&exact, &probs),
        metrics::total_variation(&exact, &probs)
    );
    println!(
        "latency at 1 GHz: {:.2} us per softmax vector",
        run.total.cycles() as f64 / 1e3
    );
    println!(
        "plan cache: {} compile / {} replays ({:.1} us compile, amortized across {} rows)",
        plans.compiles,
        plans.hits,
        plans.compile_micros,
        seq_len + 1
    );
    Ok(())
}
