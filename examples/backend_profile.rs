//! Quick per-primitive timing comparison of the two AP backends.
//! Run: `cargo run --release --example backend_profile`

use softmap_ap::{ApConfig, ApCore, DivStyle, ExecBackend, Field};
use std::time::Instant;

fn time<F: FnMut()>(label: &str, reps: u32, mut f: F) -> f64 {
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    let per = t.elapsed().as_secs_f64() / f64::from(reps);
    println!("  {label:<28} {:>10.1} us", per * 1e6);
    per
}

fn main() {
    let rows = 2048usize;
    let xs: Vec<u64> = (0..rows as u64).map(|i| i * 7 % 131071).collect();
    let ys: Vec<u64> = (0..rows as u64).map(|i| (i * 13 + 5) % 131071).collect();
    let ds: Vec<u64> = (0..rows as u64).map(|i| i % 251 + 1).collect();
    let amts: Vec<u64> = (0..rows as u64).map(|i| i % 16).collect();

    for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
        println!("{backend:?} @ {rows} rows");
        let mut ap = ApCore::with_backend(ApConfig::new(rows, 140), backend).unwrap();
        let a: Field = ap.alloc_field(17).unwrap();
        let b = ap.alloc_field(17).unwrap();
        let r = ap.alloc_field(36).unwrap();
        let q = ap.alloc_field(24).unwrap();
        let amt = ap.alloc_field(4).unwrap();
        let den = ap.alloc_field(8).unwrap();
        ap.load(a, &xs).unwrap();
        ap.load(b, &ys).unwrap();
        ap.load(amt, &amts).unwrap();
        ap.load(den, &ds).unwrap();

        time("load 17b", 50, || ap.load(a, &xs).unwrap());
        time("read 17b", 50, || {
            let _ = ap.read(a);
        });
        time("copy 17b->24b", 20, || ap.copy(a, q).unwrap());
        time("add_into 17b", 20, || ap.add_into(r.sub(0, 18), a).unwrap());
        time("sub_into 17b", 20, || {
            let _ = ap.sub_into(r.sub(0, 18), a).unwrap();
        });
        time("mul 17x17", 5, || ap.mul(a, b, r).unwrap());
        time("shr_const 17b by 3", 20, || {
            ap.shr_const(r.sub(0, 17), 3).unwrap()
        });
        time("shr_variable 17b", 10, || {
            ap.shr_variable(r.sub(0, 17), amt).unwrap()
        });
        time("divide restoring 17/8 f4", 3, || {
            ap.load(a, &xs).unwrap();
            ap.divide(a, den, q, 4, DivStyle::Restoring).unwrap();
        });
        time("max_search 17b", 20, || {
            let _ = ap.max_search(a);
        });
        time("broadcast 17b", 50, || ap.broadcast(b, 12345).unwrap());
    }
}
