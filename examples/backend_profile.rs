//! Quick per-primitive timing comparison of the two AP backends, using
//! the pooled tile API (one [`ApTile`] reused across backends, no
//! arena reallocation between programs), plus a compile-vs-replay
//! profile of the full mapped dataflow.
//! Run: `cargo run --release --example backend_profile`

use softmap::{ApSoftmax, ApSoftmaxRun, PlanMode, TileState};
use softmap_ap::{ApConfig, ApTile, DivStyle, ExecBackend, Field};
use softmap_softmax::PrecisionConfig;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, reps: u32, mut f: F) -> f64 {
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    let per = t.elapsed().as_secs_f64() / f64::from(reps);
    println!("  {label:<28} {:>10.1} us", per * 1e6);
    per
}

fn main() {
    let rows = 2048usize;
    let xs: Vec<u64> = (0..rows as u64).map(|i| i * 7 % 131071).collect();
    let ys: Vec<u64> = (0..rows as u64).map(|i| (i * 13 + 5) % 131071).collect();
    let ds: Vec<u64> = (0..rows as u64).map(|i| i % 251 + 1).collect();
    let amts: Vec<u64> = (0..rows as u64).map(|i| i % 16).collect();

    // One pooled tile serves both backends: `acquire` clears state but
    // keeps every buffer's capacity (zero steady-state allocations).
    let mut tile = ApTile::new();
    let mut readout: Vec<u64> = Vec::new();
    for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
        println!("{backend:?} @ {rows} rows");
        let ap = tile.acquire(ApConfig::new(rows, 140), backend).unwrap();
        let a: Field = ap.alloc_field(17).unwrap();
        let b = ap.alloc_field(17).unwrap();
        let r = ap.alloc_field(36).unwrap();
        let q = ap.alloc_field(24).unwrap();
        let amt = ap.alloc_field(4).unwrap();
        let den = ap.alloc_field(8).unwrap();
        ap.load(a, &xs).unwrap();
        ap.load(b, &ys).unwrap();
        ap.load(amt, &amts).unwrap();
        ap.load(den, &ds).unwrap();

        time("load 17b", 50, || ap.load(a, &xs).unwrap());
        time("read 17b (pooled)", 50, || {
            readout.clear();
            ap.read_append(a, &mut readout);
        });
        time("copy 17b->24b", 20, || ap.copy(a, q).unwrap());
        time("add_into 17b", 20, || ap.add_into(r.sub(0, 18), a).unwrap());
        time("sub_into 17b", 20, || {
            let _ = ap.sub_into_ref(r.sub(0, 18), a).unwrap();
        });
        time("mul 17x17", 5, || ap.mul(a, b, r).unwrap());
        time("shr_const 17b by 3", 20, || {
            ap.shr_const(r.sub(0, 17), 3).unwrap()
        });
        time("shr_variable 17b", 10, || {
            ap.shr_variable(r.sub(0, 17), amt).unwrap()
        });
        time("divide restoring 17/8 f4", 3, || {
            ap.load(a, &xs).unwrap();
            ap.divide(a, den, q, 4, DivStyle::Restoring).unwrap();
        });
        time("max_search 17b", 20, || {
            let _ = ap.max_search_value(a);
        });
        time("broadcast 17b", 50, || ap.broadcast(b, 12345).unwrap());
    }

    // Full dataflow: direct per-vector issue vs cached-plan replay on
    // the pooled execute path (the compile-once/replay-many contract).
    println!("full dataflow @ {rows} rows (len {})", rows * 2);
    let scores: Vec<f64> = (0..rows * 2)
        .map(|i| -f64::from((i % 97) as u32) * 0.07)
        .collect();
    let direct = ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_backend(ExecBackend::FastWord)
        .with_plan_mode(PlanMode::DirectIssue);
    // Autotuning pinned off here: these sections profile the paper's
    // fixed mapping; the autotuner gets its own section below.
    let cached = ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_autotune(false)
        .with_backend(ExecBackend::FastWord);
    let mut state = TileState::new();
    let mut run = ApSoftmaxRun::default();
    direct
        .execute_floats_into(&mut state, &scores, &mut run)
        .unwrap();
    time("direct issue (per-vector)", 10, || {
        direct
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
    });
    cached
        .execute_floats_into(&mut state, &scores, &mut run)
        .unwrap(); // compiles
    time("cached-plan replay", 10, || {
        cached
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
    });
    let plan = cached.plan(rows * 2).unwrap();
    println!(
        "  plan: {} ops, compiled once in {:.1} us, static cost {}",
        plan.program().len(),
        plan.compile_micros(),
        plan.program().static_cost()
    );
    println!("  passes: {}", plan.pass_report());

    // Region-blocked strip-mined execution: the blocked replay above is
    // the default; compare against the op-by-op escape hatch and print
    // the plan's blocking summary (host-only optimization — the device
    // cycle contract is unchanged, so `static cost` above is identical
    // on both paths).
    println!("region blocking @ {rows} rows");
    let unblocked = cached.clone().with_blocked(false);
    unblocked
        .execute_floats_into(&mut state, &scores, &mut run)
        .unwrap(); // compiles the op-by-op plan
    let op_by_op = time("op-by-op replay", 10, || {
        unblocked
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
    });
    cached
        .execute_floats_into(&mut state, &scores, &mut run)
        .unwrap(); // re-warm the blocked plan's tile slot
    let blocked_t = time("blocked replay", 10, || {
        cached
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
    });
    match plan.block_stats() {
        Some(blocks) => println!("  blocking: {blocks}"),
        None => println!("  blocking: disabled"),
    }
    println!(
        "  blocked/op-by-op wall ratio: {:.2}x",
        blocked_t / op_by_op
    );

    // Sharded residency: replay a 16384-token vector on the default
    // (resident) and re-staged plans, then summarize the plan cache in
    // one line (the single `cache_stats` probe).
    println!("sharded residency @ len 16384");
    let long: Vec<f64> = (0..16384)
        .map(|i| -f64::from((i % 97) as u32) * 0.07)
        .collect();
    let restaged = cached.clone().with_resident(false);
    cached
        .execute_floats_into(&mut state, &long, &mut run)
        .unwrap(); // compiles the resident sharded plan
    time("resident sharded replay", 5, || {
        cached
            .execute_floats_into(&mut state, &long, &mut run)
            .unwrap();
    });
    let resident_cycles = run.total.cycles();
    restaged
        .execute_floats_into(&mut state, &long, &mut run)
        .unwrap();
    time("re-staged sharded replay", 5, || {
        restaged
            .execute_floats_into(&mut state, &long, &mut run)
            .unwrap();
    });
    println!(
        "  simulated work: resident {} cyc vs re-staged {} cyc",
        resident_cycles,
        run.total.cycles()
    );
    println!("  cache: {}", cached.cache_stats());
    println!("  cache (re-staged mapping): {}", restaged.cache_stats());

    // Mapping autotuner: search per shape, replay the winner. Prints
    // the chosen mapping per shape and the tuner's cache statistics.
    println!("mapping autotuner");
    let tuned = ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_backend(ExecBackend::FastWord);
    for len in [1024usize, 4096, 6000, 16384] {
        let scores: Vec<f64> = (0..len)
            .map(|i| -f64::from((i % 97) as u32) * 0.07)
            .collect();
        tuned
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap(); // first vector of the shape runs the search
        time(&format!("autotuned replay len {len}"), 5, || {
            tuned
                .execute_floats_into(&mut state, &scores, &mut run)
                .unwrap();
        });
        let plan = tuned.tuned_plan(len).unwrap();
        println!(
            "  len {len}: chose [{}] — {} cyc vs default {} cyc ({} candidates, search {:.1} us)",
            plan.choice(),
            plan.winner_cost().total.cycles(),
            plan.default_cost().total.cycles(),
            plan.scores().len(),
            plan.compile_micros()
        );
    }
    println!("  cache (tuned mapping): {}", tuned.cache_stats());

    // Serving layer: a mixed burst through the bounded queue — waves
    // coalesce at admission, long vectors fan their shards across the
    // workers, and the cache summary now carries the serving counters.
    println!("serving layer (mixed burst)");
    let server = softmap::SoftmaxServer::new(
        ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(ExecBackend::FastWord),
        softmap::ServeConfig {
            warmup_shapes: vec![64, 1024, 4096, 16384],
            ..softmap::ServeConfig::from_env()
        },
    )
    .unwrap();
    let burst: Vec<Vec<f64>> = (0..24)
        .map(|r| {
            let len = [64usize, 1024, 4096, 16384][r % 4];
            (0..len)
                .map(|i| -f64::from(((i + r * 31) % 97) as u32) * 0.07)
                .collect()
        })
        .collect();
    let t = Instant::now();
    let served = server.execute_batch(&burst).unwrap();
    let wall = t.elapsed().as_secs_f64();
    let stats = server.stats();
    println!(
        "  {} requests in {:.1} ms ({:.0} req/s wall)",
        served.len(),
        wall * 1e3,
        served.len() as f64 / wall
    );
    println!(
        "  device schedule: makespan {} cyc, occupancy {:.2} over {} tiles",
        stats.makespan_cycles,
        stats.occupancy(),
        stats.tiles
    );
    println!("  serving: {stats}");
    println!("  cache (served mapping): {}", server.cache_stats());
}
