//! Hardware characterization at one operating point: AP vs. A100 and
//! RTX3090 on the full Llama2-7b softmax workload (the machinery behind
//! Figs. 6-8).
//!
//! ```text
//! cargo run --release --example characterize [seq_len] [batch]
//! ```

use softmap::characterize::{Characterizer, OperatingPoint};
use softmap_llm::configs::llama2_7b;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let seq_len: usize = args.next().map_or(Ok(2048), |s| s.parse())?;
    let batch: usize = args.next().map_or(Ok(8), |s| s.parse())?;

    let ch = Characterizer::paper_default()?;
    let model = llama2_7b();
    let c = ch.compare(&model, OperatingPoint { seq_len, batch })?;

    println!(
        "{} prefill softmax, L = {seq_len}, B = {batch} (deployment: {} tiles/head)",
        model.name,
        ch.workload_model().deployment().tiles_per_head
    );
    println!(
        "\nAP: latency {:.3} ms, energy {:.3} mJ, {} cycles/vector, {} waves/layer",
        c.ap.latency_s * 1e3,
        c.ap.energy_j * 1e3,
        c.ap.cycles_per_vector,
        c.ap.waves_per_layer
    );
    for g in &c.gpus {
        println!(
            "{}: latency {:.3} ms, energy {:.3} mJ -> normalized latency {:.2}x, energy {:.0}x, EDP {:.0}x",
            g.gpu,
            g.latency_s * 1e3,
            g.energy_j * 1e3,
            g.norm_latency,
            g.norm_energy,
            g.norm_edp
        );
    }
    println!("\n(>1 favours the AP; paper Fig. 7 range 1.06-6.7x latency, Fig. 6 ~300x energy)");
    Ok(())
}
