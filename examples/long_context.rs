//! Long-context softmax on fixed hardware: a 16k-token attention row
//! sharded across the paper's 2048-row tiles.
//!
//! The paper evaluates up to 4096 tokens — exactly one tile at two
//! words per row. This example runs 4x that on the *unchanged* device:
//! the vector splits into four shards, the shard minima and partial
//! sums cross the reduction network, and the result is still bit-exact
//! against the scalar I-BERT specification.
//!
//! ```console
//! cargo run --release --example long_context
//! ```

use softmap::{ApSoftmax, ApSoftmaxRun, TileState};
use softmap_ap::ExecBackend;
use softmap_softmax::{IntSoftmax, PrecisionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = PrecisionConfig::paper_best();
    let seq_len = 16384usize;
    let scores: Vec<f64> = (0..seq_len)
        .map(|i| -f64::from((i % 97) as u32) * 0.07)
        .collect();

    // The default device is the paper's deployment: 48 tiles per head,
    // 2048 rows each. 16384 scores need 8192 packed rows = 4 tiles.
    let mapping = ApSoftmax::new(cfg)?.with_backend(ExecBackend::FastWord);
    let mut state = TileState::new();
    let mut run = ApSoftmaxRun::default();

    // First vector compiles the sharded plan (three phase programs per
    // shard shape); every further vector replays it with zero heap
    // allocations.
    let t0 = std::time::Instant::now();
    mapping.execute_floats_into(&mut state, &scores, &mut run)?;
    let compile = t0.elapsed();
    let t1 = std::time::Instant::now();
    mapping.execute_floats_into(&mut state, &scores, &mut run)?;
    let replay = t1.elapsed();

    println!(
        "seq_len {seq_len} on {} x {}-row tiles",
        mapping.device().tiles,
        mapping.device().rows_per_tile
    );
    println!(
        "  shards {} | waves {} | work {} cyc | critical path {} cyc (reduction {} cyc)",
        run.shards,
        run.waves,
        run.total.cycles(),
        run.latency_cycles,
        run.reduction.cycles()
    );
    println!("  host simulation: compile+execute {compile:?}, steady-state replay {replay:?}");

    // Bit-exactness against the scalar specification.
    let scalar = IntSoftmax::new(cfg)?.run_floats(&scores)?;
    assert_eq!(run.codes, scalar.codes);
    assert_eq!(run.sum, scalar.sum);
    println!("  bit-exact vs the scalar I-BERT spec over all {seq_len} codes");

    // The static cost path answers the same shape without executing.
    let vc = mapping.static_vector_cost(seq_len)?;
    assert_eq!(vc.total, run.total);
    assert_eq!(vc.latency_cycles, run.latency_cycles);
    println!(
        "  static == simulated: {} cycles, {} cell events",
        vc.total.cycles(),
        vc.total.cell_events()
    );

    // Per-step breakdown: per-shard phases + the cross-tile reductions.
    println!("  step breakdown (accumulated across shards):");
    for s in &run.steps {
        println!("    {:<32} {}", s.name, s.stats);
    }
    Ok(())
}
