//! Model-free precision sweep: distribution error of the integer
//! softmax over the paper's (M, v_corr, N) grid — the software half of
//! the co-design, without needing a language model.
//!
//! ```text
//! cargo run --release --example precision_sweep
//! ```

use softmap_softmax::sweep::{self, run_error_sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vectors = sweep::synthetic_score_vectors(16, 1024, 7);
    let grid = sweep::full_grid();
    let points = run_error_sweep(&grid, &vectors)?;

    println!(
        "{:<24} {:>12} {:>10} {:>10}",
        "config", "mean KL", "max TV", "overflow"
    );
    for p in &points {
        println!(
            "{:<24} {:>12.3e} {:>10.4} {:>9.0}%",
            p.config.label(),
            p.mean_kl,
            p.max_tv,
            p.overflow_rate * 100.0
        );
    }

    // Aggregate the paper's findings from the sweep.
    let by = |m: u32, n: u32| {
        points
            .iter()
            .find(|p| p.config.m == m && p.config.n_sum_bits == n && p.config.vcorr_delta == 0)
            .expect("grid point")
    };
    println!("\nfindings (cf. Tables III/IV):");
    println!(
        "  M=4 mean KL {:.2e} vs M=8 {:.2e}  -> M=4 unusable",
        by(4, 16).mean_kl,
        by(8, 16).mean_kl
    );
    println!(
        "  N=8 overflow rate {:.0}% vs N=16 {:.0}%  -> sum truncation at small N",
        by(6, 8).overflow_rate * 100.0,
        by(6, 16).overflow_rate * 100.0
    );
    Ok(())
}
