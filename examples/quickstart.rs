//! Quickstart: run the integer-only softmax and compare it with the
//! exact one.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use softmap_softmax::{float_ref, metrics, IntSoftmax, PrecisionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Attention-like scores (non-positive after max subtraction).
    let scores = [0.0_f64, -0.4, -1.1, -2.7, -0.2, -5.0, -3.3, -0.9];

    // The paper's best precision combination: M = 6, v_corr = M, N = 16.
    let cfg = PrecisionConfig::paper_best();
    let sm = IntSoftmax::new(cfg)?;

    println!("config: {} (scale S = {:.4})", cfg.label(), cfg.scale());
    println!(
        "offline constants: vln2 = {}, mu = {}, vb = {}, vc = {}",
        sm.constants().vln2,
        sm.constants().mu,
        sm.constants().vb,
        sm.constants().vc
    );

    let out = sm.run_floats(&scores)?;
    let exact = float_ref::softmax(&scores);

    println!(
        "\n{:>8} {:>12} {:>12} {:>10}",
        "score", "int softmax", "exact", "|diff|"
    );
    for i in 0..scores.len() {
        println!(
            "{:>8.2} {:>12.6} {:>12.6} {:>10.6}",
            scores[i],
            out.probabilities[i],
            exact[i],
            (out.probabilities[i] - exact[i]).abs()
        );
    }
    println!(
        "\nKL(exact || int) = {:.3e}, total variation = {:.3e}",
        metrics::kl_divergence(&exact, &out.probabilities),
        metrics::total_variation(&exact, &out.probabilities)
    );
    println!(
        "sum register: {} (exact {}), overflowed: {}",
        out.sum, out.sum_exact, out.sum_overflowed
    );
    Ok(())
}
