#!/usr/bin/env bash
# Runs the AP-relevant cargo benches and assembles BENCH_ap.json so the
# perf trajectory is comparable across PRs.
#
# Usage: scripts/bench_ap.sh [--quick] [output.json]
#
#   --quick   CI smoke mode: tiny measurement budget, backend_compare
#             only, no perf gate — just proves the bench harness runs.
#
# Environment:
#   CRITERION_MEASURE_MS  per-benchmark wall-clock budget (default 500)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
out=""
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        -*)
            echo "unknown flag: $arg (usage: $0 [--quick] [output.json])" >&2
            exit 2
            ;;
        *) out="$arg" ;;
    esac
done
if [ -z "$out" ]; then
    # Quick mode must not clobber the committed full perf record.
    if [ "$quick" = 1 ]; then out="BENCH_ap.quick.json"; else out="BENCH_ap.json"; fi
fi

lines="$(mktemp)"
trap 'rm -f "$lines"' EXIT

export CRITERION_JSON="$lines"

if [ "$quick" = 1 ]; then
    export CRITERION_MEASURE_MS="${CRITERION_MEASURE_MS:-50}"
    export CRITERION_WARMUP_MS="${CRITERION_WARMUP_MS:-10}"
    cargo bench -p softmap-bench --bench backend_compare
else
    export CRITERION_MEASURE_MS="${CRITERION_MEASURE_MS:-500}"
    cargo bench -p softmap-bench \
        --bench ap_softmax_dataflow \
        --bench table2_ap_primitives \
        --bench scalar_softmax \
        --bench backend_compare
fi

python3 - "$lines" "$out" "$quick" <<'PY'
import json, platform, subprocess, sys

lines_path, out_path, quick = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
results = [json.loads(l) for l in open(lines_path) if l.strip()]

by_name = {r["bench"]: r["ns_per_iter"] for r in results}
speedups = {}
for key, label in [("512", "rows256"), ("1024", "rows512"),
                   ("2048", "rows1024"), ("4096", "rows2048")]:
    # backend_compare labels benchmarks by row count (= len / 2).
    rows = str(int(key) // 2)
    micro = by_name.get(f"backend/microcode/{rows}")
    fast = by_name.get(f"backend/fastword/{rows}")
    reused = by_name.get(f"backend/fastword-reused/{rows}")
    if micro and fast:
        speedups[f"fastword_speedup_{label}"] = round(micro / fast, 2)
    if micro and reused:
        speedups[f"fastword_reused_speedup_{label}"] = round(micro / reused, 2)
    if fast and reused:
        speedups[f"tile_reuse_gain_{label}"] = round(fast / reused, 2)

doc = {
    "schema": "softmap-bench-ap-v1",
    "quick": quick,
    "rustc": subprocess.run(["rustc", "--version"], capture_output=True,
                            text=True).stdout.strip(),
    "host": platform.platform(),
    "results_ns_per_iter": {r["bench"]: r["ns_per_iter"] for r in results},
    "backend_speedups": speedups,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} benchmarks)")
PY
