#!/usr/bin/env bash
# Runs the AP-relevant cargo benches and assembles BENCH_ap.json so the
# perf trajectory is comparable across PRs.
#
# Usage: scripts/bench_ap.sh [--quick] [output.json]
#
#   --quick   CI smoke mode: tiny measurement budget, backend_compare
#             only. The replay perf gate still applies (see below).
#
# Perf gate: backend/fastword-replayed/2048 must be no slower than the
# recorded backend/fastword-reused/2048 baseline in the committed
# BENCH_ap.json (tolerance SOFTMAP_REPLAY_TOL, default 1.5 to absorb
# cross-host variance; the same-run comparison is printed alongside).
# Set SOFTMAP_REPLAY_TOL=0 to disable the gate.
#
# Shard gate (host-invariant): the sharded long-sequence series
# (backend/fastword-sharded/{4096,8192} = seq 8192/16384 on 2048-row
# tiles) must exist and scale ~linearly — the 16384/8192 same-run time
# ratio must stay within [1.2, 4.5]; the ratio cancels host speed.
#
# Optimizer gate (host-invariant): the `cycles/...` records the bench
# appends are simulated cycle counts from the compiled plans (static ==
# simulated is test-enforced), so they do not depend on host speed.
# cycles/fastword-optimized/2048 must be <= 0.85x cycles/fastword/2048
# — the pass pipeline's >= 15% cut at the default deployment tile.
# Residency gate (host-invariant): the resident sharded regime must
# keep at most 0.90x the re-staged simulated cycles at seq 16384 —
# cycles/fastword-sharded-resident/8192 <= 0.90x
# cycles/fastword-sharded-optimized/8192. Like the optimizer gate these
# are static == simulated cycle counts, so host speed never enters.
# Autotune gate (host-invariant): the mapping autotuner's winner must
# keep cycles/fastword-autotuned/<rows> <= cycles/fastword-default/<rows>
# at every emitted length (64 - 32768 tokens) — the tuner's "never
# statically worse than the paper default" contract, on static ==
# simulated cycle counts.
#
# Blocking gate (wall-clock, same-run ratio): the region-blocked
# strip-mined executor must actually be faster than the op-by-op
# engine where it is designed to win — the large-tile point. Both
# series replay the IDENTICAL fused plan in the same process, so the
# ratio cancels host speed: backend/fastword-blocked/2048 must be
# <= 0.85x backend/fastword-optimized/2048. Unlike the cycle gates
# this is a wall-clock ratio (blocking is a host-only optimization —
# simulated cycles are contractually identical on both paths, so a
# cycle gate would be vacuously 1.0x).
#
# Serving gate (host-invariant): the multi-tenant serving layer's
# load-gen bench (serving_load) emits device-model records — simulated
# cycles and admission counters, independent of host speed. The
# continuous-batching schedule must beat the sequential one-request-
# at-a-time device baseline by >= 1.3x
# (serving/device_speedup_x1000 >= 1300), keep the tile grid >= 40%
# occupied (serving/occupancy_x1000 >= 400), and actually batch
# (serving/waves_formed >= 1, serving/coalesced >= 1). Wall-clock
# serving records (throughput_rps, p50/p99) are recorded but not gated.
#
# All gates run in --quick too. Set SOFTMAP_SHARD_GATE=0 /
# SOFTMAP_OPT_GATE=0 / SOFTMAP_RESIDENT_GATE=0 / SOFTMAP_AUTOTUNE_GATE=0
# / SOFTMAP_SERVE_GATE=0 / SOFTMAP_BLOCK_GATE=0 to disable individually.
#
# Measurement methodology: the vendored harness sizes each series by a
# wall-clock budget scaled by `sample_size(n)` (n% of
# CRITERION_MEASURE_MS). The pooled plan-cache series backing
# plan_replay_gain_* / plan_compile_us_* are consumed as RATIOS of each
# other, so backend_compare runs them at a 4x budget (sample_size 40) —
# a single scheduler preemption inside one short window previously
# skewed the recorded plan_replay_gain_rows1024 to 0.53 (replay cannot
# be ~2x slower than direct issue of the same schedule).
#
# Environment:
#   CRITERION_MEASURE_MS  per-benchmark wall-clock budget (default 500)
#   SOFTMAP_REPLAY_TOL    replay-vs-baseline gate tolerance (default 1.5)
#   SOFTMAP_SHARD_GATE    set 0 to disable the shard scaling gate
#   SOFTMAP_OPT_GATE      set 0 to disable the optimizer cycle gate
#   SOFTMAP_RESIDENT_GATE set 0 to disable the residency cycle gate
#   SOFTMAP_AUTOTUNE_GATE set 0 to disable the autotune cycle gate
#   SOFTMAP_SERVE_GATE    set 0 to disable the serving gate
#   SOFTMAP_BLOCK_GATE    set 0 to disable the blocked-executor gate
#   SOFTMAP_SERVE_WORKERS / SOFTMAP_SERVE_QUEUE  serving-layer knobs
#                         (positive integers; invalid values warn loudly
#                         and keep the defaults)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
out=""
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        -*)
            echo "unknown flag: $arg (usage: $0 [--quick] [output.json])" >&2
            exit 2
            ;;
        *) out="$arg" ;;
    esac
done
if [ -z "$out" ]; then
    # Quick mode must not clobber the committed full perf record.
    if [ "$quick" = 1 ]; then out="BENCH_ap.quick.json"; else out="BENCH_ap.json"; fi
fi

lines="$(mktemp)"
trap 'rm -f "$lines"' EXIT

export CRITERION_JSON="$lines"

if [ "$quick" = 1 ]; then
    export CRITERION_MEASURE_MS="${CRITERION_MEASURE_MS:-50}"
    export CRITERION_WARMUP_MS="${CRITERION_WARMUP_MS:-10}"
    cargo bench -p softmap-bench --bench backend_compare --bench serving_load
else
    export CRITERION_MEASURE_MS="${CRITERION_MEASURE_MS:-500}"
    # backend_compare runs first: its blocked-vs-op-by-op gate compares a
    # cache-resident (clock-sensitive) series against a DRAM-bound one,
    # so minutes of prior bench load would skew the ratio via frequency
    # sag before the comparison even starts.
    cargo bench -p softmap-bench \
        --bench backend_compare \
        --bench ap_softmax_dataflow \
        --bench table2_ap_primitives \
        --bench scalar_softmax \
        --bench serving_load
fi

python3 - "$lines" "$out" "$quick" <<'PY'
import json, os, platform, subprocess, sys

lines_path, out_path, quick = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
results = [json.loads(l) for l in open(lines_path) if l.strip()]

# Read the committed baseline BEFORE any overwrite of BENCH_ap.json.
baseline = {}
if os.path.exists("BENCH_ap.json"):
    try:
        baseline = json.load(open("BENCH_ap.json")).get("results_ns_per_iter", {})
    except (json.JSONDecodeError, OSError):
        baseline = {}

by_name = {r["bench"]: r["ns_per_iter"] for r in results}
speedups = {}
plan = {}
opt = {}
for key, label in [("512", "rows256"), ("1024", "rows512"),
                   ("2048", "rows1024"), ("4096", "rows2048")]:
    # backend_compare labels benchmarks by row count (= len / 2).
    rows = str(int(key) // 2)
    micro = by_name.get(f"backend/microcode/{rows}")
    fast = by_name.get(f"backend/fastword/{rows}")
    reused = by_name.get(f"backend/fastword-reused/{rows}")
    replayed = by_name.get(f"backend/fastword-replayed/{rows}")
    optimized = by_name.get(f"backend/fastword-optimized/{rows}")
    compile_ = by_name.get(f"backend/fastword-compile/{rows}")
    cyc_unopt = by_name.get(f"cycles/fastword/{rows}")
    cyc_opt = by_name.get(f"cycles/fastword-optimized/{rows}")
    if micro and fast:
        speedups[f"fastword_speedup_{label}"] = round(micro / fast, 2)
    if micro and reused:
        speedups[f"fastword_reused_speedup_{label}"] = round(micro / reused, 2)
    if fast and reused:
        speedups[f"tile_reuse_gain_{label}"] = round(fast / reused, 2)
    if reused and replayed:
        speedups[f"plan_replay_gain_{label}"] = round(reused / replayed, 2)
    if compile_ and replayed:
        # Compile amortization: what one record+execute costs beyond a
        # replay of the cached plan, in microseconds.
        plan[f"plan_compile_us_{label}"] = round(max(compile_ - replayed, 0.0) / 1e3, 1)
    if cyc_unopt and cyc_opt:
        # Simulated-cycle ratio: unoptimized replay / fused schedule at
        # the same shape. Host-invariant (static == simulated).
        opt[f"opt_gain_{label}"] = round(cyc_unopt / cyc_opt, 3)
        opt[f"opt_cycles_{label}"] = int(cyc_opt)
        opt[f"unopt_cycles_{label}"] = int(cyc_unopt)
    if replayed and optimized:
        # Wall-clock companion to the cycle ratio (host-dependent).
        opt[f"opt_replay_gain_{label}"] = round(replayed / optimized, 2)
if "plan_compile_us_rows1024" in plan:
    plan["plan_compile_us"] = plan["plan_compile_us_rows1024"]
for seq in ("8192", "16384"):
    cyc_u = by_name.get(f"cycles/fastword-sharded/{int(seq) // 2}")
    cyc_o = by_name.get(f"cycles/fastword-sharded-optimized/{int(seq) // 2}")
    if cyc_u and cyc_o:
        opt[f"opt_gain_shard_seq{seq}"] = round(cyc_u / cyc_o, 3)

# Sharded long-sequence series (seq = 2 x rows label; 2048-row tiles).
shard = {}
shard8k = by_name.get("backend/fastword-sharded/4096")
shard16k = by_name.get("backend/fastword-sharded/8192")
if shard8k:
    shard["shard_seq8192_ns"] = round(shard8k, 1)
if shard16k:
    shard["shard_seq16384_ns"] = round(shard16k, 1)
if shard8k and shard16k:
    shard["shard_scale_16384_over_8192"] = round(shard16k / shard8k, 2)
whole4k = by_name.get("backend/fastword-replayed/2048")
if whole4k and shard8k:
    # Host time per score crossing the single-tile boundary (the
    # sharded path re-stages operands between phases, so > 1x).
    shard["shard_overhead_vs_whole_per_score"] = round(
        (shard8k / 8192.0) / (whole4k / 4096.0), 2)

# Resident sharded regime: shards keep their tiles across phases, so
# phase-boundary Load/Read staging is elided. Cycle fields are
# host-invariant (static == simulated); wall-clock fields are not.
resident = {}
for seq in ("8192", "16384"):
    rows = str(int(seq) // 2)
    wall = by_name.get(f"backend/fastword-sharded-resident/{rows}")
    cyc_r = by_name.get(f"cycles/fastword-sharded-resident/{rows}")
    cyc_o = by_name.get(f"cycles/fastword-sharded-optimized/{rows}")
    if wall:
        resident[f"resident_seq{seq}_ns"] = round(wall, 1)
    if cyc_r:
        resident[f"resident_cycles_seq{seq}"] = int(cyc_r)
    if cyc_r and cyc_o:
        resident[f"resident_over_restaged_seq{seq}"] = round(cyc_r / cyc_o, 3)

# Region-blocked strip-mined executor: wall-clock replay of the SAME
# fused plan through the blocked engine vs the op-by-op engine (both
# measured this run, same process — the ratio cancels host speed).
# There is no cycle companion: blocking is a host-only optimization
# and charges contractually identical CycleStats.
blocking = {}
for rows in ("256", "512", "1024", "2048"):
    blk = by_name.get(f"backend/fastword-blocked/{rows}")
    opbyop = by_name.get(f"backend/fastword-optimized/{rows}")
    if blk:
        blocking[f"blocked_rows{rows}_ns"] = round(blk, 1)
    if blk and opbyop:
        blocking[f"blocked_over_opbyop_rows{rows}"] = round(blk / opbyop, 3)
for seq in ("8192", "16384"):
    rows = str(int(seq) // 2)
    blk = by_name.get(f"backend/fastword-sharded-blocked/{rows}")
    opbyop = by_name.get(f"backend/fastword-sharded-resident/{rows}")
    if blk:
        blocking[f"blocked_shard_seq{seq}_ns"] = round(blk, 1)
    if blk and opbyop:
        blocking[f"blocked_over_opbyop_shard_seq{seq}"] = round(blk / opbyop, 3)

# Multi-tenant serving layer: wall-clock throughput/latency (host-
# dependent, informational) plus the device-model schedule quality the
# serving gate runs on (host-invariant: simulated cycles and admission
# counters from the load-gen bench).
serving = {}
for key, label in [("serving/requests", "requests"),
                   ("serving/throughput_rps", "throughput_rps"),
                   ("serving/p50_us", "p50_us"),
                   ("serving/p99_us", "p99_us"),
                   ("serving/wall_speedup_x1000", "wall_speedup_x1000"),
                   ("serving/device_speedup_x1000", "device_speedup_x1000"),
                   ("serving/occupancy_x1000", "occupancy_x1000"),
                   ("serving/waves_formed", "waves_formed"),
                   ("serving/coalesced", "coalesced")]:
    v = by_name.get(key)
    if v is not None:
        serving[label] = int(v)
if "device_speedup_x1000" in serving:
    serving["device_speedup"] = round(serving["device_speedup_x1000"] / 1000.0, 2)
if "occupancy_x1000" in serving:
    serving["occupancy"] = round(serving["occupancy_x1000"] / 1000.0, 3)

# Mapping autotuner: tuned-winner vs paper-default simulated cycles at
# every emitted length. Host-invariant (static == simulated).
autotune = {}
for rows, ns in sorted(by_name.items()):
    if not rows.startswith("cycles/fastword-autotuned/"):
        continue
    label = rows.rsplit("/", 1)[1]
    default_ns = by_name.get(f"cycles/fastword-default/{label}")
    seq = int(label) * 2
    autotune[f"autotune_cycles_seq{seq}"] = int(ns)
    if default_ns:
        autotune[f"autotune_default_cycles_seq{seq}"] = int(default_ns)
        autotune[f"autotune_over_default_seq{seq}"] = round(ns / default_ns, 3)

doc = {
    "schema": "softmap-bench-ap-v1",
    "quick": quick,
    "rustc": subprocess.run(["rustc", "--version"], capture_output=True,
                            text=True).stdout.strip(),
    "host": platform.platform(),
    "results_ns_per_iter": {r["bench"]: r["ns_per_iter"] for r in results},
    "backend_speedups": speedups,
    "plan_cache": plan,
    "sharding": shard,
    "residency": resident,
    "blocking": blocking,
    "optimizer": opt,
    "autotune": autotune,
    "serving": serving,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} benchmarks)")

# ---- replay perf gate ----------------------------------------------------
tol = float(os.environ.get("SOFTMAP_REPLAY_TOL", "1.5"))
if tol > 0:
    replayed = by_name.get("backend/fastword-replayed/2048")
    reused_now = by_name.get("backend/fastword-reused/2048")
    reused_rec = baseline.get("backend/fastword-reused/2048") or reused_now
    if not (replayed and reused_now and reused_rec):
        # A gate that cannot find its series must fail, not skip.
        print("REPLAY GATE FAILED: missing benchmark series "
              f"(fastword-replayed/2048 = {replayed}, "
              f"same-run fastword-reused/2048 = {reused_now}, "
              f"recorded baseline = {reused_rec}). "
              "Did a series get renamed without updating the gate?",
              file=sys.stderr)
        sys.exit(1)
    # Host-invariant threshold: the same-run reused measurement is the
    # primary reference (a slower CI runner slows both series alike);
    # the recorded baseline still gates same-host regressions.
    limit = max(reused_now, reused_rec) * tol
    print(f"replay gate: fastword-replayed/2048 = {replayed:.0f} ns vs "
          f"recorded fastword-reused/2048 baseline = {reused_rec:.0f} ns, "
          f"same-run reused = {reused_now:.0f} ns (limit {limit:.0f} ns, tol {tol}x)")
    if replayed > limit:
        print("REPLAY GATE FAILED: cached-plan replay "
              f"({replayed:.0f} ns) exceeds {tol}x the slower of the "
              f"same-run reused measurement ({reused_now:.0f} ns) and the "
              f"recorded fastword-reused baseline ({reused_rec:.0f} ns). "
              "Compile-once/replay-many must not lose to per-vector issue.",
              file=sys.stderr)
        sys.exit(1)
    print("replay gate: OK")

# ---- shard scaling gate ----------------------------------------------------
# Host-invariant by construction: both series come from the same run on
# the same machine, so their RATIO cancels host speed. Doubling the
# token count (8192 -> 16384 scores, 2 -> 4 shards on 2048-row tiles)
# must roughly double the simulation time; a super-linear blow-up means
# the sharded path lost its zero-allocation / plan-replay properties.
if os.environ.get("SOFTMAP_SHARD_GATE", "1") != "0":
    if not (shard8k and shard16k):
        print("SHARD GATE FAILED: missing benchmark series "
              f"(fastword-sharded/4096 = {shard8k}, "
              f"fastword-sharded/8192 = {shard16k}). "
              "Did a series get renamed without updating the gate?",
              file=sys.stderr)
        sys.exit(1)
    ratio = shard16k / shard8k
    lo, hi = 1.2, 4.5
    print(f"shard gate: sharded 16384 / sharded 8192 = {ratio:.2f}x "
          f"(allowed {lo}-{hi}x; 8192 = {shard8k:.0f} ns, 16384 = {shard16k:.0f} ns)")
    if not (lo <= ratio <= hi):
        print("SHARD GATE FAILED: doubling the sharded sequence scaled "
              f"{ratio:.2f}x (allowed {lo}-{hi}x). Sub-linear means a "
              "series is mislabeled; super-linear means the sharded path "
              "regressed (per-vector allocation or recompilation).",
              file=sys.stderr)
        sys.exit(1)
    print("shard gate: OK")

# ---- optimizer cycle gate --------------------------------------------------
# Host-invariant by construction: both numbers are simulated cycle
# counts from the compiled plans' static costs (static == simulated is
# enforced by crates/eval/tests/static_cost.rs), so host speed never
# enters. The pass pipeline must cut the default deployment tile
# (2048 rows) by at least 15%.
if os.environ.get("SOFTMAP_OPT_GATE", "1") != "0":
    cyc_unopt = by_name.get("cycles/fastword/2048")
    cyc_opt = by_name.get("cycles/fastword-optimized/2048")
    if not (cyc_unopt and cyc_opt):
        print("OPT GATE FAILED: missing simulated-cycle records "
              f"(cycles/fastword/2048 = {cyc_unopt}, "
              f"cycles/fastword-optimized/2048 = {cyc_opt}). "
              "Did backend_compare stop emitting cycle lines?",
              file=sys.stderr)
        sys.exit(1)
    ratio = cyc_opt / cyc_unopt
    print(f"opt gate: fused {cyc_opt:.0f} vs unoptimized {cyc_unopt:.0f} "
          f"simulated cycles @2048 rows = {ratio:.3f}x (limit 0.85x)")
    if ratio > 0.85:
        print("OPT GATE FAILED: the fused schedule keeps "
              f"{ratio:.3f}x of the unoptimized simulated cycles at the "
              "default deployment tile (allowed <= 0.85x). A pass "
              "stopped firing or the fused ops lost their cost model "
              "discount.", file=sys.stderr)
        sys.exit(1)
    print("opt gate: OK")

# ---- residency cycle gate --------------------------------------------------
# Host-invariant by construction: both numbers are simulated cycle
# counts from the compiled sharded plans' static costs (static ==
# simulated is enforced by crates/eval/tests/static_cost.rs). Keeping
# shards resident across phases must cut the re-staged seq-16384
# schedule by at least 10%.
if os.environ.get("SOFTMAP_RESIDENT_GATE", "1") != "0":
    cyc_res = by_name.get("cycles/fastword-sharded-resident/8192")
    cyc_restaged = by_name.get("cycles/fastword-sharded-optimized/8192")
    if not (cyc_res and cyc_restaged):
        print("RESIDENT GATE FAILED: missing simulated-cycle records "
              f"(cycles/fastword-sharded-resident/8192 = {cyc_res}, "
              f"cycles/fastword-sharded-optimized/8192 = {cyc_restaged}). "
              "Did backend_compare stop emitting the resident series?",
              file=sys.stderr)
        sys.exit(1)
    ratio = cyc_res / cyc_restaged
    print(f"resident gate: resident {cyc_res:.0f} vs re-staged "
          f"{cyc_restaged:.0f} simulated cycles @seq 16384 = {ratio:.3f}x "
          "(limit 0.90x)")
    if ratio > 0.90:
        print("RESIDENT GATE FAILED: the resident sharded schedule keeps "
              f"{ratio:.3f}x of the re-staged simulated cycles at seq "
              f"16384 (resident = {cyc_res:.0f} cyc, re-staged = "
              f"{cyc_restaged:.0f} cyc; allowed <= 0.90x). Residency "
              "stopped eliding phase-boundary staging or the lockstep "
              "replay lost its zero-charge accounting.", file=sys.stderr)
        sys.exit(1)
    print("resident gate: OK")

# ---- blocked-executor gate -------------------------------------------------
# Wall-clock, but a SAME-RUN ratio of two series replaying the
# identical fused plan in the same process, so host speed cancels.
# There is no cycle-count companion gate: blocking is a host-only
# optimization whose CycleStats are contractually identical to the
# op-by-op engine's (differential-proptest-enforced), so a simulated-
# cycle gate would be vacuously 1.0x. The blocked executor must win
# where it is designed to win — the large-tile (2048-row) point.
if os.environ.get("SOFTMAP_BLOCK_GATE", "1") != "0":
    blk = by_name.get("backend/fastword-blocked/2048")
    opbyop = by_name.get("backend/fastword-optimized/2048")
    if not (blk and opbyop):
        print("BLOCK GATE FAILED: missing benchmark series "
              f"(fastword-blocked/2048 = {blk}, "
              f"fastword-optimized/2048 = {opbyop}). "
              "Did backend_compare stop emitting the blocked series?",
              file=sys.stderr)
        sys.exit(1)
    ratio = blk / opbyop
    print(f"block gate: blocked {blk:.0f} ns vs op-by-op {opbyop:.0f} ns "
          f"@2048 rows = {ratio:.3f}x (limit 0.85x)")
    if ratio > 0.85:
        print("BLOCK GATE FAILED: the region-blocked executor replays "
              f"the fused 2048-row plan in {blk:.0f} ns vs the op-by-op "
              f"engine's {opbyop:.0f} ns ({ratio:.3f}x; required <= "
              "0.85x). Strip-mining stopped beating the per-op "
              "gather/scatter pattern — a region stopped admitting, a "
              "strip kernel lost vectorization, or the strip sizing "
              "regressed.", file=sys.stderr)
        sys.exit(1)
    print("block gate: OK")

# ---- autotune cycle gate ---------------------------------------------------
# Host-invariant by construction: both numbers are simulated cycle
# counts from compiled plans' static costs (static == simulated is
# enforced by crates/eval/tests/static_cost.rs and the autotuner's own
# tests). The tuned winner must never be statically worse than the
# paper-default mapping, at any emitted length.
if os.environ.get("SOFTMAP_AUTOTUNE_GATE", "1") != "0":
    tuned_series = {k: v for k, v in by_name.items()
                    if k.startswith("cycles/fastword-autotuned/")}
    if not tuned_series:
        print("AUTOTUNE GATE FAILED: no cycles/fastword-autotuned/* "
              "records found. Did backend_compare stop emitting the "
              "autotuned series?", file=sys.stderr)
        sys.exit(1)
    failed = False
    for name, tuned_cyc in sorted(tuned_series.items(),
                                  key=lambda kv: int(kv[0].rsplit("/", 1)[1])):
        label = name.rsplit("/", 1)[1]
        default_cyc = by_name.get(f"cycles/fastword-default/{label}")
        if not default_cyc:
            print(f"AUTOTUNE GATE FAILED: cycles/fastword-default/{label} "
                  f"is missing for {name}.", file=sys.stderr)
            sys.exit(1)
        seq = int(label) * 2
        print(f"autotune gate: seq {seq}: tuned {tuned_cyc:.0f} vs "
              f"default {default_cyc:.0f} simulated cycles "
              f"({tuned_cyc / default_cyc:.3f}x)")
        if tuned_cyc > default_cyc:
            print(f"AUTOTUNE GATE FAILED: at seq {seq} the tuned winner "
                  f"({tuned_cyc:.0f} cyc) exceeds the paper-default "
                  f"mapping ({default_cyc:.0f} cyc). The autotuner must "
                  "never install a statically worse plan — the default "
                  "candidate is always scored and wins ties.",
                  file=sys.stderr)
            failed = True
    if failed:
        sys.exit(1)
    print("autotune gate: OK")

# ---- serving gate ----------------------------------------------------------
# Host-invariant by construction: every gated quantity is a device-model
# number — simulated cycles (request latencies, TileClocks makespan) and
# admission counters — so host speed and core count never enter. The
# continuous-batching scheduler must beat the sequential one-request-
# at-a-time device baseline by >= 1.3x, keep the grid >= 40% occupied,
# and demonstrably batch (at least one wave, at least one coalesced
# request). Wall-clock serving numbers are recorded, never gated.
if os.environ.get("SOFTMAP_SERVE_GATE", "1") != "0":
    speedup = by_name.get("serving/device_speedup_x1000")
    occupancy = by_name.get("serving/occupancy_x1000")
    waves = by_name.get("serving/waves_formed")
    coalesced = by_name.get("serving/coalesced")
    if speedup is None or occupancy is None or waves is None or coalesced is None:
        print("SERVING GATE FAILED: missing serving records "
              f"(device_speedup_x1000 = {speedup}, "
              f"occupancy_x1000 = {occupancy}, waves_formed = {waves}, "
              f"coalesced = {coalesced}). "
              "Did serving_load stop emitting, or stop being run?",
              file=sys.stderr)
        sys.exit(1)
    print(f"serving gate: device speedup {speedup / 1000:.2f}x "
          f"(limit >= 1.30x), occupancy {occupancy / 1000:.3f} "
          f"(limit >= 0.400), {waves:.0f} waves, "
          f"{coalesced:.0f} coalesced requests")
    if speedup < 1300:
        print("SERVING GATE FAILED: the continuous-batching schedule's "
              f"device speedup is {speedup / 1000:.2f}x over the "
              "sequential baseline (required >= 1.30x). The admission "
              "scheduler stopped packing concurrent requests onto the "
              "grid.", file=sys.stderr)
        sys.exit(1)
    if occupancy < 400:
        print("SERVING GATE FAILED: tile occupancy is "
              f"{occupancy / 1000:.3f} (required >= 0.400). The wave "
              "packer is leaving most of the grid idle.", file=sys.stderr)
        sys.exit(1)
    if waves < 1 or coalesced < 1:
        print("SERVING GATE FAILED: the scheduler formed "
              f"{waves:.0f} waves with {coalesced:.0f} coalesced "
              "requests — continuous batching never coalesced anything.",
              file=sys.stderr)
        sys.exit(1)
    print("serving gate: OK")
PY
