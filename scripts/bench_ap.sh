#!/usr/bin/env bash
# Runs the AP-relevant cargo benches and assembles BENCH_ap.json so the
# perf trajectory is comparable across PRs.
#
# Usage: scripts/bench_ap.sh [output.json]
#
# Environment:
#   CRITERION_MEASURE_MS  per-benchmark wall-clock budget (default 500)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_ap.json}"
lines="$(mktemp)"
trap 'rm -f "$lines"' EXIT

export CRITERION_JSON="$lines"
export CRITERION_MEASURE_MS="${CRITERION_MEASURE_MS:-500}"

cargo bench -p softmap-bench \
    --bench ap_softmax_dataflow \
    --bench table2_ap_primitives \
    --bench scalar_softmax \
    --bench backend_compare

python3 - "$lines" "$out" <<'PY'
import json, platform, subprocess, sys

lines_path, out_path = sys.argv[1], sys.argv[2]
results = [json.loads(l) for l in open(lines_path) if l.strip()]

by_name = {r["bench"]: r["ns_per_iter"] for r in results}
speedups = {}
for key, label in [("512", "rows256"), ("1024", "rows512"),
                   ("2048", "rows1024"), ("4096", "rows2048")]:
    # backend_compare labels benchmarks by row count (= len / 2).
    rows = str(int(key) // 2)
    micro = by_name.get(f"backend/microcode/{rows}")
    fast = by_name.get(f"backend/fastword/{rows}")
    if micro and fast:
        speedups[f"fastword_speedup_{label}"] = round(micro / fast, 2)

doc = {
    "schema": "softmap-bench-ap-v1",
    "rustc": subprocess.run(["rustc", "--version"], capture_output=True,
                            text=True).stdout.strip(),
    "host": platform.platform(),
    "results_ns_per_iter": {r["bench"]: r["ns_per_iter"] for r in results},
    "backend_speedups": speedups,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} benchmarks)")
PY
