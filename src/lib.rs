//! Workspace umbrella crate for the SoftmAP reproduction.
//!
//! This crate exists to host the repository-level `examples/` and
//! `tests/` directories required by the reproduction layout. All library
//! functionality lives in the `softmap-*` member crates; see the README
//! for the map.

/// Returns the version of the reproduction workspace.
///
/// # Examples
///
/// ```
/// assert!(!softmap_repro::version().is_empty());
/// ```
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}
