//! Cross-crate integration: the AP-mapped dataflow must reproduce the
//! scalar Algorithm 1 specification bit-for-bit, across precisions,
//! layouts, lengths and division styles.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use softmap::{ApSoftmax, Layout};
use softmap_ap::DivStyle;
use softmap_softmax::{IntSoftmax, PrecisionConfig, SumMode};

fn random_scores(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| -rng.random::<f64>() * 9.0).collect()
}

#[test]
fn bit_exact_across_the_paper_grid() {
    let mut rng = StdRng::seed_from_u64(20_250_610);
    for m in [4u32, 6, 8] {
        for delta in [0u32, 1, 2] {
            for n in [8u32, 12, 16, 20] {
                let cfg = PrecisionConfig::new(m, delta, n);
                let scores = random_scores(&mut rng, 64);
                let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
                let run = ApSoftmax::new(cfg)
                    .unwrap()
                    .execute_floats(&scores)
                    .unwrap();
                assert_eq!(run.vapprox, scalar.vapprox, "{}", cfg.label());
                assert_eq!(run.sum, scalar.sum, "{}", cfg.label());
                assert_eq!(run.codes, scalar.codes, "{}", cfg.label());
            }
        }
    }
}

#[test]
fn bit_exact_across_lengths_and_layouts() {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = PrecisionConfig::paper_best();
    for len in [2usize, 3, 7, 16, 33, 128, 511, 1024] {
        let scores = random_scores(&mut rng, len);
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        for layout in [Layout::TwoWordsPerRow, Layout::OneWordPerRow] {
            let run = ApSoftmax::new(cfg)
                .unwrap()
                .with_layout(layout)
                .execute_floats(&scores)
                .unwrap();
            assert_eq!(run.codes, scalar.codes, "len {len}, layout {layout:?}");
        }
    }
}

#[test]
fn bit_exact_with_saturating_and_wrapping_sums() {
    // Long, flat inputs force sum truncation; both overflow behaviours
    // must match the scalar spec exactly.
    for mode in [SumMode::Saturate, SumMode::Wrap] {
        let cfg = PrecisionConfig::new(6, 0, 1).with_sum_mode(mode);
        let scores = vec![-0.05f64; 512];
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        assert!(scalar.sum_overflowed, "mode {mode:?} must overflow");
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .execute_floats(&scores)
            .unwrap();
        assert_eq!(run.sum, scalar.sum, "mode {mode:?}");
        assert_eq!(run.codes, scalar.codes, "mode {mode:?}");
    }
}

#[test]
fn reciprocal_division_within_one_ulp_of_spec() {
    let mut rng = StdRng::seed_from_u64(99);
    let cfg = PrecisionConfig::paper_best();
    let scores = random_scores(&mut rng, 32);
    let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
    let run = ApSoftmax::new(cfg)
        .unwrap()
        .with_div_style(DivStyle::ControllerReciprocal)
        .execute_floats(&scores)
        .unwrap();
    for (i, (&got, &want)) in run.codes.iter().zip(&scalar.codes).enumerate() {
        assert!(
            got <= want && want - got <= 1,
            "element {i}: ap {got} vs scalar {want}"
        );
    }
}

#[test]
fn quantizer_agrees_between_crates() {
    // The softmax crate's quantizer and the generic quant crate must
    // agree on the paper's scheme.
    let cfg = PrecisionConfig::new(8, 0, 16);
    let sm = IntSoftmax::new(cfg).unwrap();
    let q = softmap_quant::LinearQuantizer::with_scale(
        cfg.scale(),
        softmap_quant::IntFormat::signed(cfg.m),
    )
    .unwrap();
    for &x in &[0.0, -0.5, -3.3, -6.99, -7.0] {
        let via_softmax = sm.quantize(&[0.0, x])[1];
        let via_quant = q.quantize(x).max(-cfg.max_code_magnitude());
        assert_eq!(via_softmax, via_quant, "x = {x}");
    }
}
