//! End-to-end integration: train the tiny LM, evaluate perplexity with
//! the integer softmax, and characterize the same configuration's
//! hardware cost — the full co-design loop in one test binary.

use softmap::characterize::{Characterizer, OperatingPoint};
use softmap_llm::configs::llama2_7b;
use softmap_llm::corpus::Corpus;
use softmap_llm::perplexity::perplexity;
use softmap_llm::softmax_impls::{FloatSoftmax, IntApproxSoftmax};
use softmap_llm::train::{train_language_model, TrainConfig};
use softmap_softmax::PrecisionConfig;

#[test]
fn software_hardware_codesign_loop() {
    // --- software side: accuracy of the chosen precision -------------
    let corpus = Corpus::generate(4242, 12_000);
    let cfg = TrainConfig {
        steps: 80,
        batch: 8,
        ..TrainConfig::default()
    };
    let trained = train_language_model(&corpus, &cfg).unwrap();
    assert!(trained.final_loss < trained.initial_loss);
    let (_, val) = corpus.split(0.1);

    let fp = perplexity(&trained.model, val, &FloatSoftmax).unwrap();
    let best = PrecisionConfig::paper_best();
    let int = IntApproxSoftmax::new(best).unwrap();
    let int_ppl = perplexity(&trained.model, val, &int).unwrap();
    assert!(
        int_ppl < fp * 1.2,
        "best-precision integer softmax ({int_ppl}) must stay near FP ({fp})"
    );

    // --- hardware side: the same precision on the AP ------------------
    let ch = Characterizer::paper_default().unwrap();
    let c = ch
        .compare(
            &llama2_7b(),
            OperatingPoint {
                seq_len: 2048,
                batch: 8,
            },
        )
        .unwrap();
    for g in &c.gpus {
        assert!(g.norm_energy > 1.0, "{}: energy must favour the AP", g.gpu);
        assert!(g.norm_edp > 1.0, "{}: EDP must favour the AP", g.gpu);
    }
    assert!(
        c.gpus[0].norm_latency > 1.0,
        "at L = 2048 the AP should already be faster than the A100"
    );
}

#[test]
fn degraded_precision_shows_up_in_perplexity() {
    let corpus = Corpus::generate(777, 12_000);
    let cfg = TrainConfig {
        steps: 80,
        batch: 8,
        ..TrainConfig::default()
    };
    let trained = train_language_model(&corpus, &cfg).unwrap();
    let (_, val) = corpus.split(0.1);

    let good = IntApproxSoftmax::new(PrecisionConfig::new(8, 0, 9)).unwrap();
    let truncating = IntApproxSoftmax::new(PrecisionConfig::new(8, 0, 1)).unwrap();
    let ppl_good = perplexity(&trained.model, val, &good).unwrap();
    let ppl_bad = perplexity(&trained.model, val, &truncating).unwrap();
    assert!(
        ppl_bad > ppl_good,
        "sum truncation (N'=1: {ppl_bad}) must degrade vs headroom (N'=9: {ppl_good})"
    );
}
