//! Smoke-level integration of the experiment harness: every table and
//! figure generator runs and produces non-trivial, paper-shaped output.
//! (Deep shape assertions live in `softmap-eval`'s unit tests; the
//! perplexity grids are exercised there to keep this binary fast.)

use softmap_eval::fig678::Quantity;
use softmap_eval::{amdahl, area, fig1, fig678, table1, table2, table5, table6};
use softmap_llm::configs::paper_models;

#[test]
fn every_light_experiment_renders() {
    assert!(fig1::render(&fig1::run()).contains("Fig. 1"));
    assert!(table1::run().render().contains("Table I"));
    assert!(table2::render(&table2::run()).contains("Table II"));
    assert!(table5::render(&table5::run().unwrap()).contains("Table V"));
    assert!(table6::render(&table6::run().unwrap()).contains("Table VI"));
    assert!(area::render(&area::run().unwrap()).contains("area"));
    assert!(amdahl::render(&amdahl::run().unwrap()).contains("Amdahl"));
}

#[test]
fn figures_cover_all_models_and_quantities() {
    for q in [Quantity::Energy, Quantity::Latency, Quantity::Edp] {
        let s = fig678::render_figure(q).unwrap();
        for model in paper_models() {
            assert!(s.contains(model.name), "{q:?} missing {model:?}");
        }
    }
}

#[test]
fn headline_claim_holds_up_to_three_orders_of_magnitude_edp() {
    // The abstract: "up to three orders of magnitude improvement in the
    // energy-delay product compared to A100 and RTX3090 GPUs".
    let rows = table5::run().unwrap();
    let best = rows
        .iter()
        .map(|r| r.a100.0.max(r.rtx3090.0))
        .fold(0.0f64, f64::max);
    assert!(
        best >= 1e3,
        "max EDP ratio {best} below three orders of magnitude"
    );
}

#[test]
fn area_matches_paper_within_two_percent() {
    for r in area::run().unwrap() {
        let rel = (r.area_mm2 - r.paper_mm2).abs() / r.paper_mm2;
        assert!(rel < 0.02, "{}: {} vs {}", r.model, r.area_mm2, r.paper_mm2);
    }
}
