//! End-to-end acceptance of the capacity-bounded device model: a
//! 16384-token softmax on the paper's fixed 2048-row tiles runs
//! sharded, matches the scalar I-BERT specification bit-exactly, and
//! the static cost path answers the sharded shape with
//! static == simulated.

use softmap::{ApDeployment, ApSoftmax, ApSoftmaxRun, TileState, WorkloadModel};
use softmap_ap::{DeviceConfig, ExecBackend};
use softmap_softmax::{IntSoftmax, PrecisionConfig};

#[test]
fn seq_16384_on_2048_row_tiles_is_bit_exact_and_statically_costed() {
    let cfg = PrecisionConfig::paper_best();
    let scores: Vec<f64> = (0..16384)
        .map(|i| -f64::from((i % 97) as u32) * 7.0 / 97.0)
        .collect();

    // Sharded execution on the default device (48 x 2048-row tiles).
    // Pinned to the paper-default mapping: this acceptance test
    // characterizes the packed four-shard regime (the autotuner's
    // choice for this shape has its own acceptance coverage).
    let mapping = ApSoftmax::new(cfg)
        .unwrap()
        .with_autotune(false)
        .with_backend(ExecBackend::FastWord);
    assert_eq!(mapping.device().rows_per_tile, 2048);
    let run = mapping.execute_floats(&scores).unwrap();
    assert_eq!(run.shards, 4, "16384 scores = 4 x 2048-row shards");
    assert_eq!(run.waves, 1, "48 tiles hold 4 shards in one wave");
    assert!(run.reduction.cycles() > 0);

    // Bit-exact against the scalar specification.
    let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
    assert_eq!(run.codes, scalar.codes);
    assert_eq!(run.vapprox, scalar.vapprox);
    assert_eq!(run.sum, scalar.sum);

    // static == simulated for the sharded shape, through both the
    // mapping-level query and the deployment model.
    let vc = mapping.static_vector_cost(16384).unwrap();
    assert_eq!(vc.total, run.total);
    assert_eq!(vc.latency_cycles, run.latency_cycles);
    assert_eq!(vc.shards, run.shards);
    let wm = WorkloadModel::new(cfg, ApDeployment::default()).unwrap();
    assert_eq!(wm.vector_stats(16384).unwrap(), run.total);
    let cost = wm.cost(1, 1, 16384, 1).unwrap();
    assert_eq!(cost.shards_per_vector, 4);
    assert!(cost.latency_s > 0.0 && cost.energy_j > 0.0);
}

#[test]
fn sharded_and_whole_regimes_agree_at_the_boundary() {
    // 4096 scores fit exactly one tile; 4098 must shard. Both match
    // the scalar spec, and the boundary does not distort results.
    let cfg = PrecisionConfig::paper_best();
    let spec = IntSoftmax::new(cfg).unwrap();
    for len in [4096usize, 4098] {
        let scores: Vec<f64> = (0..len).map(|i| -((i % 89) as f64) * 0.075).collect();
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .with_autotune(false)
            .with_backend(ExecBackend::FastWord)
            .execute_floats(&scores)
            .unwrap();
        assert_eq!(run.shards, if len == 4096 { 1 } else { 2 }, "len {len}");
        let scalar = spec.run_floats(&scores).unwrap();
        assert_eq!(run.codes, scalar.codes, "len {len}");
        assert_eq!(run.sum, scalar.sum, "len {len}");
    }
}

#[test]
fn microcode_and_fastword_agree_on_a_sharded_vector() {
    // Cycle- and bit-exact dual-backend contract through the sharded
    // path, kept cheap with a small device.
    let cfg = PrecisionConfig::paper_best();
    let dev = DeviceConfig::new(3, 16);
    let scores: Vec<f64> = (0..100).map(|i| -((i % 71) as f64) * 0.09).collect();
    let mut runs = Vec::new();
    for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
        let mapping = ApSoftmax::new(cfg)
            .unwrap()
            .with_backend(backend)
            .with_device(dev);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        mapping
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
        assert!(run.shards > 1);
        runs.push(run);
    }
    assert_eq!(runs[0].codes, runs[1].codes);
    assert_eq!(
        runs[0].total, runs[1].total,
        "cycle stats must be identical"
    );
    assert_eq!(runs[0].latency_cycles, runs[1].latency_cycles);
    assert_eq!(runs[0].steps, runs[1].steps);
}
