//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors a minimal wall-clock benchmarking harness covering the API
//! its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Every measurement prints `name ... ns/iter` and, when the
//! `CRITERION_JSON` environment variable names a file, appends one JSON
//! line per benchmark: `{"bench":..., "ns_per_iter":...}` — the hook
//! `scripts/bench_ap.sh` uses to assemble `BENCH_ap.json`.
//!
//! Tuning knobs (environment): `CRITERION_MEASURE_MS` (wall-clock
//! budget per benchmark, default 300 ms), `CRITERION_WARMUP_MS`
//! (default 60 ms).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map_or(Duration::from_millis(default_ms), Duration::from_millis)
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measure: env_ms("CRITERION_MEASURE_MS", 300),
            warmup: env_ms("CRITERION_WARMUP_MS", 60),
        }
    }
}

impl Criterion {
    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.warmup, self.measure, |b| f(b));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            warmup: self.warmup,
            measure: self.measure,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    warmup: Duration,
    measure: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; this harness sizes runs by
    /// wall-clock budget, so the sample count only scales the budget
    /// down for expensive benches (criterion's default is 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n < 100 {
            let scale = (n.max(1) as u32).max(10);
            self.measure = self.measure * scale / 100;
            self.warmup = self.warmup * scale / 100;
        }
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label());
        run_one(&full, self.warmup, self.measure, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label());
        run_one(&full, self.warmup, self.measure, |b| f(b));
        self
    }

    /// Ends the group (no-op; results are reported eagerly).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: s.to_string(),
            parameter: None,
        }
    }
}

/// Passed to each benchmark closure; collects the timing loop.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: discover the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measure.as_secs_f64();
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.ns_per_iter = Some(elapsed * 1e9 / iters as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, warmup: Duration, measure: Duration, mut f: F) {
    let mut b = Bencher {
        warmup,
        measure,
        ns_per_iter: None,
    };
    f(&mut b);
    let ns = b.ns_per_iter.unwrap_or(f64::NAN);
    let mut line = String::new();
    let _ = write!(line, "bench {name:<52} {ns:>14.1} ns/iter");
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let escaped: String = name
                    .chars()
                    .flat_map(|c| match c {
                        '"' | '\\' => vec!['\\', c],
                        _ => vec![c],
                    })
                    .collect();
                let _ = writeln!(file, "{{\"bench\":\"{escaped}\",\"ns_per_iter\":{ns:.1}}}");
            }
        }
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for benches importing it from criterion rather than std.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measure: Duration::from_millis(5),
            warmup: Duration::from_millis(1),
        };
        c.bench_function("smoke/add", |b| b.iter(|| std::hint::black_box(1u64 + 2)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 7).label(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
        assert_eq!(BenchmarkId::from("f").label(), "f");
    }
}
