//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors a deterministic property-testing harness covering the API
//! surface its tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`strategy::Strategy`] with
//! `prop_map`, range/tuple/[`strategy::Just`]/[`strategy::any`]
//! strategies, [`prop_oneof!`],
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the sampled values visible in the assertion message), and the
//! per-test RNG seed is derived from the test name (override with
//! `PROPTEST_SEED`), so failures are reproducible run to run.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec<S::Value>` with a length drawn from
    /// `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vector of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace re-exports used by `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a proptest file conventionally imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure; this
/// stand-in has no shrinking, so it behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each runs for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for __pt_case in 0..__pt_config.cases {
                let _ = __pt_case;
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __pt_rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2), Just(3)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..8, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            for x in v {
                prop_assert!(x < 8);
            }
        }

        #[test]
        fn tuples_and_map(p in (0u32..4, 0u32..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(p <= 33);
        }

        #[test]
        fn oneof_draws_each_arm(x in small()) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn floats_in_range(x in -2.0f64..0.0) {
            prop_assert!((-2.0..0.0).contains(&x));
        }

        #[test]
        fn any_produces_full_range_types(x in any::<i64>(), y in any::<i32>()) {
            // Just exercise the strategies; no structural property.
            let _ = (x, y);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("determinism");
        let mut b = crate::test_runner::TestRng::for_test("determinism");
        let s = crate::collection::vec(0u64..100, 1..10);
        for _ in 0..20 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
