//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over type-erased strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(0, self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Full-range strategy for a primitive type.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The result of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range distribution.
pub trait Arbitrary {
    /// Draws a full-range value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_from_bits {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_from_bits!(u64, i64, u32, i32, u16, i16, u8, i8);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

fn sample_int_range(rng: &mut TestRng, lo: i128, hi: i128) -> i128 {
    debug_assert!(lo < hi);
    let span = (hi - lo) as u128;
    lo + ((u128::from(rng.next_u64()) * span) >> 64) as i128
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                sample_int_range(rng, self.start as i128, self.end as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                sample_int_range(
                    rng,
                    *self.start() as i128,
                    *self.end() as i128 + 1,
                ) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u64, i64, u32, i32, usize, u8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ )),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);
