//! Configuration and the deterministic RNG backing each property test.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (case count only; this stand-in has no
/// shrinking or persistence).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG seeded from the test name (stable across runs) XOR the
    /// optional `PROPTEST_SEED` environment variable.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                seed ^= extra;
            }
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + ((u128::from(self.next_u64()) * u128::from(hi - lo)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
