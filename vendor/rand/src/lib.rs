//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the small slice of the `rand` 0.9 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension trait with `random::<T>()` and
//! `random_range(..)`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which the reproduction
//! relies on for stable corpora and model initializations.

#![forbid(unsafe_code)]

/// Seedable random number generator constructors.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable uniformly from an `RngCore`.
pub trait Random: Sized {
    /// Draws one uniform sample.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `random_range` bounds.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0, "empty range");
                // Rejection-free multiply-shift; bias is < 2^-64 per draw,
                // irrelevant for test corpora.
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::random(rng)
    }
}

/// Extension methods mirroring `rand::Rng` in 0.9 naming.
pub trait RngExt: RngCore {
    /// Uniform sample of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform + PartialOrd>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample an empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_low = false;
        for _ in 0..2000 {
            let x = rng.random_range(3usize..7);
            assert!((3..7).contains(&x));
            seen_low |= x == 3;
        }
        assert!(seen_low, "lower bound should be reachable");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5usize..5);
    }
}
